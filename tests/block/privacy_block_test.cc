#include "src/block/privacy_block.h"

#include <gtest/gtest.h>

#include "src/rdp/mechanisms.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

RdpCurve FlatDemand(double eps) {
  return RdpCurve(Grid(), std::vector<double>(Grid()->size(), eps));
}

TEST(PrivacyBlockTest, CapacityFromGlobalGuarantee) {
  PrivacyBlock block(0, Grid(), 10.0, 1e-7, 0.0);
  RdpCurve expected = BlockCapacityCurve(Grid(), 10.0, 1e-7);
  for (size_t i = 0; i < Grid()->size(); ++i) {
    EXPECT_DOUBLE_EQ(block.capacity().epsilon(i), expected.epsilon(i));
  }
  EXPECT_TRUE(block.consumed().IsZero());
  EXPECT_DOUBLE_EQ(block.unlocked_fraction(), 1.0);
}

TEST(PrivacyBlockTest, AcceptsWithinCapacityAtSomeOrder) {
  PrivacyBlock block(0, Grid(), 10.0, 1e-7, 0.0);
  // Flat demand of 5: fits at large alphas (capacity ~9.7) even though low alphas have
  // zero capacity — the exists-alpha semantic.
  EXPECT_TRUE(block.CanAccept(FlatDemand(5.0)));
  // Flat demand of 11 exceeds every order (max capacity < 10).
  EXPECT_FALSE(block.CanAccept(FlatDemand(11.0)));
}

TEST(PrivacyBlockTest, VersionTracksEffectiveStateChanges) {
  PrivacyBlock block(0, Grid(), 10.0, 1e-7, 0.0, /*initial_unlocked=*/0.0);
  EXPECT_EQ(block.version(), 0u);
  block.SetUnlockedFraction(0.5);
  EXPECT_EQ(block.version(), 1u);
  block.SetUnlockedFraction(0.5);  // No effective change: version stable.
  EXPECT_EQ(block.version(), 1u);
  block.SetUnlockedFraction(0.2);  // Stale (monotone unlocking): ignored entirely.
  EXPECT_EQ(block.version(), 1u);
  block.Commit(FlatDemand(1.0));
  EXPECT_EQ(block.version(), 2u);
  block.Commit(FlatDemand(1.0));
  EXPECT_EQ(block.version(), 3u);
}

TEST(PrivacyBlockTest, CommitAccumulatesAndDepletes) {
  PrivacyBlock block(0, Grid(), 10.0, 1e-7, 0.0);
  RdpCurve demand = FlatDemand(4.0);
  EXPECT_TRUE(block.CanAccept(demand));
  block.Commit(demand);
  EXPECT_TRUE(block.CanAccept(demand));  // 8 still fits at alpha = 64 (cap 9.74).
  block.Commit(demand);
  EXPECT_FALSE(block.CanAccept(demand));  // 12 exceeds every order.
}

TEST(PrivacyBlockTest, ExistsAlphaSemanticOverspendsOtherOrders) {
  // A demand tailored to alpha = 64 can exceed capacity at every other order and still be
  // admitted as long as alpha = 64 holds.
  PrivacyBlock block(0, Grid(), 10.0, 1e-7, 0.0);
  std::vector<double> eps(Grid()->size(), 1000.0);
  eps[Grid()->IndexOf(64.0)] = 1.0;
  RdpCurve demand(Grid(), eps);
  EXPECT_TRUE(block.CanAccept(demand));
  block.Commit(demand);
  EXPECT_TRUE(block.CanAccept(demand));
  for (int i = 0; i < 8; ++i) {
    block.Commit(demand);  // 9 total: 9 <= 9.74 at alpha = 64.
  }
  EXPECT_FALSE(block.CanAccept(demand));  // 10 > 9.74.
}

TEST(PrivacyBlockTest, AvailableCurveClampsAtZero) {
  PrivacyBlock block(0, Grid(), 10.0, 1e-7, 0.0);
  std::vector<double> eps(Grid()->size(), 20.0);
  eps[Grid()->IndexOf(64.0)] = 1.0;
  block.Commit(RdpCurve(Grid(), eps));
  RdpCurve available = block.AvailableCurve();
  for (size_t i = 0; i < available.size(); ++i) {
    EXPECT_GE(available.epsilon(i), 0.0);
  }
  EXPECT_NEAR(available.epsilon(Grid()->IndexOf(64.0)),
              block.capacity().epsilon(Grid()->IndexOf(64.0)) - 1.0, 1e-12);
  // Orders where consumption exceeded capacity have zero available budget.
  EXPECT_DOUBLE_EQ(available.epsilon(Grid()->IndexOf(8.0)), 0.0);
}

TEST(PrivacyBlockTest, UnlockingGatesAdmission) {
  PrivacyBlock block(0, Grid(), 10.0, 1e-7, 0.0, /*initial_unlocked=*/0.0);
  RdpCurve demand = FlatDemand(0.5);
  EXPECT_FALSE(block.CanAccept(demand));
  // 10% unlocked: alpha = 64 capacity is ~0.974 >= 0.5.
  block.SetUnlockedFraction(0.1);
  EXPECT_TRUE(block.CanAccept(demand));
}

TEST(PrivacyBlockTest, UnlockingIsMonotone) {
  PrivacyBlock block(0, Grid(), 10.0, 1e-7, 0.0, /*initial_unlocked=*/0.0);
  block.SetUnlockedFraction(0.5);
  block.SetUnlockedFraction(0.2);  // Stale update: ignored.
  EXPECT_DOUBLE_EQ(block.unlocked_fraction(), 0.5);
}

TEST(PrivacyBlockTest, ZeroDemandAlwaysAccepted) {
  PrivacyBlock block(0, Grid(), 10.0, 1e-7, 0.0);
  block.SetUnlockedFraction(0.1);
  EXPECT_TRUE(block.CanAccept(RdpCurve(Grid())));
}

TEST(PrivacyBlockTest, ExhaustedDetection) {
  PrivacyBlock block(0, Grid(), 10.0, 1e-7, 0.0);
  EXPECT_FALSE(block.Exhausted());
  // A demand that exactly exhausts alpha = 64 and overshoots every other order leaves no
  // strictly positive remaining capacity anywhere.
  std::vector<double> eps(Grid()->size(), 100.0);
  size_t i64 = Grid()->IndexOf(64.0);
  eps[i64] = block.capacity().epsilon(i64);
  block.Commit(RdpCurve(Grid(), eps));
  EXPECT_TRUE(block.Exhausted());
}

TEST(PrivacyBlockTest, ExhaustedToleratesFloatNoise) {
  // Same tolerance as CanAccept: a block consumed to within float noise of capacity at
  // every usable order can never admit a meaningful demand and must report exhausted.
  PrivacyBlock block(0, Grid(), 10.0, 1e-7, 0.0);
  std::vector<double> eps(Grid()->size(), 0.0);
  for (size_t i = 0; i < Grid()->size(); ++i) {
    double cap = block.capacity().epsilon(i);
    eps[i] = cap > 0.0 ? cap * (1.0 - 1e-12) : 100.0;
  }
  block.Commit(RdpCurve(Grid(), eps));
  EXPECT_TRUE(block.Exhausted());
}

TEST(PrivacyBlockDeathTest, CommitRejectedDemandAborts) {
  PrivacyBlock block(0, Grid(), 10.0, 1e-7, 0.0);
  EXPECT_DEATH(block.Commit(FlatDemand(11.0)), "filter");
}

TEST(PrivacyBlockTest, FilterGuaranteePreservedUnderAdaptiveCommits) {
  // Property 6: any sequence of admitted demands keeps at least one order within capacity,
  // so translation at that order certifies the global (eps_g, delta_g) guarantee.
  PrivacyBlock block(0, Grid(), 4.0, 1e-6, 0.0);
  RdpCurve increments = GaussianCurve(Grid(), 6.0);
  int admitted = 0;
  while (block.CanAccept(increments) && admitted < 10000) {
    block.Commit(increments);
    ++admitted;
  }
  EXPECT_GT(admitted, 0);
  bool some_order_within = false;
  for (size_t i = 0; i < Grid()->size(); ++i) {
    if (block.capacity().epsilon(i) > 0.0 &&
        block.consumed().epsilon(i) <= block.capacity().epsilon(i)) {
      some_order_within = true;
    }
  }
  EXPECT_TRUE(some_order_within);
}

}  // namespace
}  // namespace dpack
