#include "src/block/block_manager.h"

#include <gtest/gtest.h>

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

TEST(BlockManagerTest, AddBlockAssignsDenseIds) {
  BlockManager manager(Grid(), 10.0, 1e-7);
  EXPECT_EQ(manager.AddBlock(0.0), 0);
  EXPECT_EQ(manager.AddBlock(1.0), 1);
  EXPECT_EQ(manager.AddBlock(2.0), 2);
  EXPECT_EQ(manager.block_count(), 3u);
  EXPECT_DOUBLE_EQ(manager.block(1).arrival_time(), 1.0);
}

TEST(BlockManagerTest, BlocksStartLockedUnlessRequested) {
  BlockManager manager(Grid(), 10.0, 1e-7);
  manager.AddBlock(0.0);
  manager.AddBlock(0.0, /*unlocked=*/true);
  EXPECT_DOUBLE_EQ(manager.block(0).unlocked_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(manager.block(1).unlocked_fraction(), 1.0);
}

TEST(BlockManagerTest, MostRecentBlocks) {
  BlockManager manager(Grid(), 10.0, 1e-7);
  for (int i = 0; i < 5; ++i) {
    manager.AddBlock(static_cast<double>(i));
  }
  std::vector<BlockId> recent = manager.MostRecentBlocks(3);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0], 2);
  EXPECT_EQ(recent[2], 4);
  // Asking for more than exist returns all.
  EXPECT_EQ(manager.MostRecentBlocks(100).size(), 5u);
}

TEST(BlockManagerTest, UnlockScheduleMatchesPaperFormula) {
  // unlocked = min(steps witnessed incl. current, N) / N, steps = floor((t - t_j)/T) + 1.
  BlockManager manager(Grid(), 10.0, 1e-7);
  manager.AddBlock(0.0);
  manager.UpdateUnlocks(/*now=*/0.0, /*period=*/1.0, /*unlock_steps=*/10);
  // Age 0: the block has witnessed its first scheduling step.
  EXPECT_DOUBLE_EQ(manager.block(0).unlocked_fraction(), 0.1);
  manager.UpdateUnlocks(3.0, 1.0, 10);
  EXPECT_DOUBLE_EQ(manager.block(0).unlocked_fraction(), 0.4);
  manager.UpdateUnlocks(9.5, 1.0, 10);
  EXPECT_DOUBLE_EQ(manager.block(0).unlocked_fraction(), 1.0);
  manager.UpdateUnlocks(100.0, 1.0, 10);
  EXPECT_DOUBLE_EQ(manager.block(0).unlocked_fraction(), 1.0);
}

TEST(BlockManagerTest, UnlockHonorsBlockArrivalTime) {
  BlockManager manager(Grid(), 10.0, 1e-7);
  manager.AddBlock(5.0);
  manager.UpdateUnlocks(5.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(manager.block(0).unlocked_fraction(), 0.25);
  manager.UpdateUnlocks(7.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(manager.block(0).unlocked_fraction(), 0.75);
}

TEST(BlockManagerTest, EpochAdvancesOnEveryArrival) {
  BlockManager manager(Grid(), 10.0, 1e-7);
  EXPECT_EQ(manager.epoch(), 0u);
  manager.AddBlock(0.0);
  EXPECT_EQ(manager.epoch(), 1u);
  manager.AddBlockWithCapacity(BlockCapacityCurve(Grid(), 10.0, 1e-7), 1.0);
  EXPECT_EQ(manager.epoch(), 2u);
}

TEST(BlockManagerTest, UpdateUnlocksBumpsVersionsOnlyOnEffectiveChange) {
  BlockManager manager(Grid(), 10.0, 1e-7);
  manager.AddBlock(0.0);
  uint64_t v0 = manager.block(0).version();
  manager.UpdateUnlocks(0.0, 1.0, 10);  // 0 -> 0.1: effective.
  uint64_t v1 = manager.block(0).version();
  EXPECT_GT(v1, v0);
  manager.UpdateUnlocks(0.0, 1.0, 10);  // Same fraction: no change.
  EXPECT_EQ(manager.block(0).version(), v1);
  manager.UpdateUnlocks(5.0, 1.0, 10);  // 0.1 -> 0.6: effective.
  EXPECT_GT(manager.block(0).version(), v1);
}

TEST(BlockManagerTest, ClonePreservesEpochAndVersions) {
  BlockManager manager(Grid(), 10.0, 1e-7);
  manager.AddBlock(0.0, /*unlocked=*/true);
  manager.AddBlock(1.0);
  manager.UpdateUnlocks(3.0, 1.0, 10);
  manager.block(0).Commit(BlockCapacityCurve(Grid(), 10.0, 1e-7).Scaled(0.1));

  BlockManager clone = manager.Clone();
  EXPECT_EQ(clone.epoch(), manager.epoch());
  for (BlockId j = 0; j < 2; ++j) {
    EXPECT_EQ(clone.block(j).version(), manager.block(j).version());
    EXPECT_DOUBLE_EQ(clone.block(j).unlocked_fraction(),
                     manager.block(j).unlocked_fraction());
  }
}

TEST(BlockManagerTest, LargerPeriodUnlocksMoreSlowly) {
  // Just before t = 5: with period T = 5 the block has witnessed one step; with T = 1 it
  // has witnessed five.
  BlockManager a(Grid(), 10.0, 1e-7);
  a.AddBlock(0.0);
  a.UpdateUnlocks(4.9, 5.0, 10);
  EXPECT_DOUBLE_EQ(a.block(0).unlocked_fraction(), 0.1);

  BlockManager b(Grid(), 10.0, 1e-7);
  b.AddBlock(0.0);
  b.UpdateUnlocks(4.9, 1.0, 10);
  EXPECT_DOUBLE_EQ(b.block(0).unlocked_fraction(), 0.5);
}

}  // namespace
}  // namespace dpack
