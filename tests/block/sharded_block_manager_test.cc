#include "src/block/sharded_block_manager.h"

#include <gtest/gtest.h>

#include "src/rdp/mechanisms.h"

namespace dpack {
namespace {

constexpr double kEpsG = 10.0;
constexpr double kDeltaG = 1e-7;

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

TEST(ShardedBlockManagerTest, RoundRobinPartition) {
  BlockManager blocks(Grid(), kEpsG, kDeltaG);
  for (int b = 0; b < 10; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }
  ShardedBlockManager partition(&blocks, 3);
  EXPECT_EQ(partition.Sync(), 10u);
  EXPECT_EQ(partition.known_blocks(), 10u);

  // Block g lands in shard g mod 3 at local index g / 3.
  EXPECT_EQ(partition.shard_members(0), (std::vector<BlockId>{0, 3, 6, 9}));
  EXPECT_EQ(partition.shard_members(1), (std::vector<BlockId>{1, 4, 7}));
  EXPECT_EQ(partition.shard_members(2), (std::vector<BlockId>{2, 5, 8}));
  EXPECT_EQ(partition.ShardOf(7), 1u);
  EXPECT_EQ(partition.LocalIndex(7), 2u);

  // Per-shard epochs count absorbed arrivals.
  EXPECT_EQ(partition.shard_epoch(0), 4u);
  EXPECT_EQ(partition.shard_epoch(1), 3u);
  EXPECT_EQ(partition.shard_epoch(2), 3u);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_TRUE(partition.shard_dirty(s));  // First sync absorbed arrivals everywhere.
  }
}

TEST(ShardedBlockManagerTest, VersionSumsDetectExactlyTheTouchedShard) {
  BlockManager blocks(Grid(), kEpsG, kDeltaG);
  for (int b = 0; b < 6; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }
  ShardedBlockManager partition(&blocks, 2);
  partition.Sync();
  partition.Sync();  // No change since the previous sync: everything clean.
  EXPECT_FALSE(partition.shard_dirty(0));
  EXPECT_FALSE(partition.shard_dirty(1));

  // A commit to block 3 (shard 1) bumps only that shard's version sum.
  uint64_t v0 = partition.shard_version(0);
  uint64_t v1 = partition.shard_version(1);
  blocks.block(3).Commit(GaussianCurve(Grid(), 20.0));
  partition.Sync();
  EXPECT_FALSE(partition.shard_dirty(0));
  EXPECT_TRUE(partition.shard_dirty(1));
  EXPECT_EQ(partition.shard_version(0), v0);
  EXPECT_GT(partition.shard_version(1), v1);
}

TEST(ShardedBlockManagerTest, AbsorbsOnlineArrivalsIncrementally) {
  BlockManager blocks(Grid(), kEpsG, kDeltaG);
  blocks.AddBlock(0.0, /*unlocked=*/true);
  ShardedBlockManager partition(&blocks, 4);
  EXPECT_EQ(partition.Sync(), 1u);

  blocks.AddBlock(1.0);
  blocks.AddBlock(2.0);
  EXPECT_EQ(partition.Sync(), 2u);
  EXPECT_EQ(partition.known_blocks(), 3u);
  EXPECT_EQ(partition.shard_members(1), (std::vector<BlockId>{1}));
  EXPECT_EQ(partition.shard_members(2), (std::vector<BlockId>{2}));
  EXPECT_TRUE(partition.shard_dirty(1));
  EXPECT_TRUE(partition.shard_dirty(2));
  EXPECT_FALSE(partition.shard_dirty(0));  // Shard 0's block is unchanged.
  EXPECT_TRUE(partition.shard_members(3).empty());
  EXPECT_EQ(partition.shard_epoch(3), 0u);
}

TEST(ShardedBlockManagerTest, IdRangePartitionChunksAndDenseLocals) {
  // Id-range mode assigns 64-block chunks (kRangeChunkShift, aligned to the version tree's
  // group size) round-robin across shards: blocks [0, 64) → shard 0, [64, 128) → shard 1,
  // [128, 192) → shard 2, [192, 200) → shard 0.
  BlockManager blocks(Grid(), kEpsG, kDeltaG);
  for (int b = 0; b < 200; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }
  ShardedBlockManager partition(&blocks, 3, BlockPartition::kIdRange);
  EXPECT_EQ(partition.partition(), BlockPartition::kIdRange);
  EXPECT_EQ(partition.Sync(), 200u);

  EXPECT_EQ(partition.ShardOf(0), 0u);
  EXPECT_EQ(partition.ShardOf(63), 0u);
  EXPECT_EQ(partition.ShardOf(64), 1u);
  EXPECT_EQ(partition.ShardOf(128), 2u);
  EXPECT_EQ(partition.ShardOf(192), 0u);
  EXPECT_EQ(partition.shard_members(0).size(), 64u + 8u);
  EXPECT_EQ(partition.shard_members(1).size(), 64u);
  EXPECT_EQ(partition.shard_members(2).size(), 64u);

  // Local indices are dense per shard — exactly 0..members-1, matching each member's rank
  // in the shard's (ascending) member list. The engines' local-indexed buffers (requester
  // lists) size off members.size() and rely on this.
  for (size_t s = 0; s < 3; ++s) {
    const std::vector<BlockId>& members = partition.shard_members(s);
    for (size_t rank = 0; rank < members.size(); ++rank) {
      EXPECT_EQ(partition.LocalIndex(members[rank]), rank)
          << "shard " << s << " member " << members[rank];
      EXPECT_EQ(partition.ShardOf(members[rank]), s);
    }
  }
}

TEST(ShardedBlockManagerTest, IdRangeVersionSumsTrackTheOwningShard) {
  BlockManager blocks(Grid(), kEpsG, kDeltaG);
  for (int b = 0; b < 130; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }
  ShardedBlockManager partition(&blocks, 2, BlockPartition::kIdRange);
  partition.Sync();
  partition.Sync();
  EXPECT_FALSE(partition.shard_dirty(0));
  EXPECT_FALSE(partition.shard_dirty(1));

  // Block 100 lives in chunk 1 → shard 1; only that shard goes dirty.
  blocks.block(100).Commit(GaussianCurve(Grid(), 20.0));
  partition.Sync();
  EXPECT_FALSE(partition.shard_dirty(0));
  EXPECT_TRUE(partition.shard_dirty(1));
  EXPECT_EQ(partition.shard_changed(1), (std::vector<BlockId>{100}));
}

TEST(ShardedBlockManagerTest, SingleShardOwnsEverything) {
  BlockManager blocks(Grid(), kEpsG, kDeltaG);
  for (int b = 0; b < 5; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }
  ShardedBlockManager partition(&blocks, 1);
  partition.Sync();
  EXPECT_EQ(partition.shard_members(0).size(), 5u);
  EXPECT_EQ(partition.shard_epoch(0), 5u);
}

}  // namespace
}  // namespace dpack
