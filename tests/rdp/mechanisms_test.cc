#include "src/rdp/mechanisms.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

TEST(GaussianCurveTest, ClosedForm) {
  double sigma = 2.0;
  RdpCurve curve = GaussianCurve(Grid(), sigma);
  for (size_t i = 0; i < Grid()->size(); ++i) {
    EXPECT_NEAR(curve.epsilon(i), Grid()->order(i) / (2.0 * sigma * sigma), 1e-12);
  }
}

TEST(GaussianCurveTest, MoreNoiseLessLoss) {
  RdpCurve tight = GaussianCurve(Grid(), 4.0);
  RdpCurve loose = GaussianCurve(Grid(), 1.0);
  EXPECT_TRUE(tight.DominatedBy(loose));
}

TEST(LaplaceCurveTest, MatchesMironovClosedForm) {
  // Mironov '17 Prop. 6 direct evaluation at alpha = 2, b = 1:
  // eps(2) = log( (2/3) e^{1} + (1/3) e^{-2} ).
  RdpCurve curve = LaplaceCurve(Grid(), 1.0);
  double expected = std::log(2.0 / 3.0 * std::exp(1.0) + 1.0 / 3.0 * std::exp(-2.0));
  EXPECT_NEAR(curve.epsilon(Grid()->IndexOf(2.0)), expected, 1e-10);
}

TEST(LaplaceCurveTest, ApproachesPureDpAtLargeAlpha) {
  // As alpha -> infinity, Laplace RDP approaches the pure-DP bound 1/b.
  double b = 2.0;
  RdpCurve curve = LaplaceCurve(Grid(), b);
  double at64 = curve.epsilon(Grid()->IndexOf(64.0));
  EXPECT_LT(at64, 1.0 / b);
  EXPECT_GT(at64, 0.8 / b);
}

TEST(LaplaceCurveTest, StableAtSmallScaleLargeAlpha) {
  // b = 0.05 gives (alpha-1)/b = 1260 at alpha = 64; must not overflow.
  RdpCurve curve = LaplaceCurve(Grid(), 0.05);
  double at64 = curve.epsilon(Grid()->IndexOf(64.0));
  EXPECT_TRUE(std::isfinite(at64));
  EXPECT_NEAR(at64, 1.0 / 0.05, 1.0);  // Close to the pure-DP bound 20.
}

TEST(LaplaceCurveTest, MonotoneIncreasingInAlpha) {
  RdpCurve curve = LaplaceCurve(Grid(), 1.5);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve.epsilon(i), curve.epsilon(i - 1) - 1e-12);
  }
}

TEST(SubsampledCurveTest, ZeroRateIsZeroCurve) {
  EXPECT_TRUE(SubsampledGaussianCurve(Grid(), 1.0, 0.0).IsZero());
}

TEST(SubsampledCurveTest, FullRateMatchesBaseAtIntegerOrders) {
  // q = 1: the binomial bound collapses to the base moment, so integer grid orders must
  // reproduce the base Gaussian curve exactly.
  double sigma = 2.0;
  RdpCurve sub = SubsampledGaussianCurve(Grid(), sigma, 1.0);
  RdpCurve base = GaussianCurve(Grid(), sigma);
  for (double alpha : {2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 16.0, 32.0, 64.0}) {
    size_t i = Grid()->IndexOf(alpha);
    EXPECT_NEAR(sub.epsilon(i), base.epsilon(i), 1e-9) << "alpha=" << alpha;
  }
}

TEST(SubsampledCurveTest, SubsamplingAmplifiesPrivacy) {
  // q < 1 must be pointwise no worse than the base mechanism at integer orders.
  double sigma = 2.0;
  RdpCurve sub = SubsampledGaussianCurve(Grid(), sigma, 0.01);
  RdpCurve base = GaussianCurve(Grid(), sigma);
  for (double alpha : {2.0, 3.0, 4.0, 8.0, 16.0, 64.0}) {
    size_t i = Grid()->IndexOf(alpha);
    EXPECT_LE(sub.epsilon(i), base.epsilon(i) + 1e-12);
  }
  // And dramatically better at small alpha (roughly q^2 scaling).
  size_t i3 = Grid()->IndexOf(3.0);
  EXPECT_LT(sub.epsilon(i3), base.epsilon(i3) * 0.01);
}

TEST(SubsampledCurveTest, MonotoneInSamplingRate) {
  RdpCurve lo = SubsampledGaussianCurve(Grid(), 1.5, 0.01);
  RdpCurve hi = SubsampledGaussianCurve(Grid(), 1.5, 0.1);
  EXPECT_TRUE(lo.DominatedBy(hi));
}

TEST(SubsampledCurveTest, FractionalOrdersInterpolateBetweenIntegers) {
  // The interpolated log-moment at alpha in (1, 2) must give eps between 0 and eps(2)
  // scaled appropriately; sanity: finite, non-negative, and below the alpha=2 value times
  // the (alpha-1) ratio bound.
  RdpCurve sub = SubsampledGaussianCurve(Grid(), 1.0, 0.05);
  double e15 = sub.epsilon(Grid()->IndexOf(1.5));
  double e2 = sub.epsilon(Grid()->IndexOf(2.0));
  EXPECT_GE(e15, 0.0);
  // (alpha-1) eps(alpha) interpolation: 0.5 * e15 = 0.5 * logA(2) => e15 == logA(2) = e2.
  EXPECT_NEAR(e15, e2, 1e-9);
}

TEST(SubsampledLaplaceTest, AmplifiesBase) {
  RdpCurve sub = SubsampledLaplaceCurve(Grid(), 1.0, 0.05);
  RdpCurve base = LaplaceCurve(Grid(), 1.0);
  for (double alpha : {2.0, 3.0, 4.0, 8.0, 64.0}) {
    size_t i = Grid()->IndexOf(alpha);
    EXPECT_LE(sub.epsilon(i), base.epsilon(i) + 1e-12);
  }
}

TEST(MechanismSpecTest, CompositionScalesLinearly) {
  MechanismSpec spec{MechanismType::kComposedGaussian, 2.0, 0.0, 10};
  RdpCurve curve = spec.BuildCurve(Grid());
  RdpCurve base = GaussianCurve(Grid(), 2.0);
  for (size_t i = 0; i < curve.size(); ++i) {
    EXPECT_NEAR(curve.epsilon(i), 10.0 * base.epsilon(i), 1e-9);
  }
}

TEST(MechanismSpecTest, LaplaceGaussianComposition) {
  MechanismSpec spec{MechanismType::kLaplaceGaussianComposition, 2.0, 0.0, 1};
  RdpCurve curve = spec.BuildCurve(Grid());
  RdpCurve expected = LaplaceCurve(Grid(), 2.0) + GaussianCurve(Grid(), 2.0);
  for (size_t i = 0; i < curve.size(); ++i) {
    EXPECT_NEAR(curve.epsilon(i), expected.epsilon(i), 1e-12);
  }
}

TEST(MechanismSpecTest, NamesAreStable) {
  EXPECT_EQ(MechanismTypeName(MechanismType::kLaplace), "laplace");
  EXPECT_EQ(MechanismTypeName(MechanismType::kSubsampledGaussian), "subsampled_gaussian");
}

// Reproduces the qualitative content of Fig. 2: different mechanisms at sigma (or b) = 2
// have different best alphas after DP translation, and composing them yields a tighter
// global epsilon than worst-case naive addition.
TEST(Fig2Test, BestAlphasDifferAcrossMechanisms) {
  double delta = 1e-6;
  RdpCurve gaussian = GaussianCurve(Grid(), 2.0);
  RdpCurve subsampled = SubsampledGaussianCurve(Grid(), 1.0, 0.2);
  RdpCurve laplace = LaplaceCurve(Grid(), 2.0);

  DpTranslation tg = gaussian.ToDp(delta);
  DpTranslation ts = subsampled.ToDp(delta);
  DpTranslation tl = laplace.ToDp(delta);

  // Subsampled Gaussian is tighter at lower alpha; Laplace translates best at large alpha.
  EXPECT_LT(ts.alpha, tg.alpha);
  EXPECT_GE(tl.alpha, tg.alpha);

  // Composition through RDP beats adding the three translated epsilons.
  RdpCurve composition = gaussian + subsampled + laplace;
  DpTranslation tc = composition.ToDp(delta);
  EXPECT_LT(tc.epsilon, tg.epsilon + ts.epsilon + tl.epsilon);
}

}  // namespace
}  // namespace dpack
