#include "src/rdp/alpha_grid.h"

#include <gtest/gtest.h>

namespace dpack {
namespace {

TEST(AlphaGridTest, DefaultGridMatchesPaper) {
  AlphaGridPtr grid = AlphaGrid::Default();
  ASSERT_EQ(grid->size(), 12u);
  EXPECT_DOUBLE_EQ(grid->order(0), 1.5);
  EXPECT_DOUBLE_EQ(grid->order(1), 1.75);
  EXPECT_DOUBLE_EQ(grid->order(2), 2.0);
  EXPECT_DOUBLE_EQ(grid->order(11), 64.0);
}

TEST(AlphaGridTest, DefaultIsSharedInstance) {
  EXPECT_EQ(AlphaGrid::Default().get(), AlphaGrid::Default().get());
}

TEST(AlphaGridTest, TraditionalDpHasSingleOrder) {
  EXPECT_EQ(AlphaGrid::TraditionalDp()->size(), 1u);
}

TEST(AlphaGridTest, IndexOfFindsExactOrders) {
  AlphaGridPtr grid = AlphaGrid::Default();
  EXPECT_EQ(grid->IndexOf(5.0), 6u);
  EXPECT_EQ(grid->IndexOf(64.0), 11u);
  EXPECT_EQ(grid->IndexOf(7.0), grid->size());
}

TEST(AlphaGridTest, CreateCustomGrid) {
  AlphaGridPtr grid = AlphaGrid::Create({2.0, 4.0, 8.0});
  ASSERT_EQ(grid->size(), 3u);
  EXPECT_DOUBLE_EQ(grid->order(1), 4.0);
}

TEST(AlphaGridTest, SameGridComparesContent) {
  AlphaGridPtr a = AlphaGrid::Create({2.0, 3.0});
  AlphaGridPtr b = AlphaGrid::Create({2.0, 3.0});
  AlphaGridPtr c = AlphaGrid::Create({2.0, 4.0});
  EXPECT_TRUE(SameGrid(a, b));
  EXPECT_FALSE(SameGrid(a, c));
  EXPECT_TRUE(SameGrid(a, a));
}

TEST(AlphaGridDeathTest, RejectsInvalidOrders) {
  EXPECT_DEATH(AlphaGrid::Create({1.0, 2.0}), "orders must be");
  EXPECT_DEATH(AlphaGrid::Create({3.0, 2.0}), "increasing");
}

}  // namespace
}  // namespace dpack
