// Parameterized property sweeps over the RDP substrate: analytic monotonicities that must
// hold for every mechanism parameterization the workloads draw from.

#include <cmath>

#include <gtest/gtest.h>

#include "src/rdp/accountant.h"
#include "src/rdp/mechanisms.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

// --- Noise monotonicity: more noise never increases privacy loss at any order. ---

class NoiseSweepTest : public testing::TestWithParam<double> {};

TEST_P(NoiseSweepTest, GaussianMonotoneInSigma) {
  double sigma = GetParam();
  RdpCurve tighter = GaussianCurve(Grid(), sigma * 1.5);
  RdpCurve looser = GaussianCurve(Grid(), sigma);
  EXPECT_TRUE(tighter.DominatedBy(looser));
}

TEST_P(NoiseSweepTest, LaplaceMonotoneInScale) {
  double b = GetParam();
  EXPECT_TRUE(LaplaceCurve(Grid(), b * 1.5).DominatedBy(LaplaceCurve(Grid(), b)));
}

TEST_P(NoiseSweepTest, SubsampledGaussianMonotoneInSigma) {
  double sigma = GetParam();
  EXPECT_TRUE(SubsampledGaussianCurve(Grid(), sigma * 1.5, 0.05)
                  .DominatedBy(SubsampledGaussianCurve(Grid(), sigma, 0.05)));
}

TEST_P(NoiseSweepTest, DpTranslationMonotoneInDelta) {
  // A larger failure probability delta always yields a smaller-or-equal epsilon.
  RdpCurve curve = GaussianCurve(Grid(), GetParam());
  EXPECT_LE(curve.ToDp(1e-5).epsilon, curve.ToDp(1e-6).epsilon);
  EXPECT_LE(curve.ToDp(1e-6).epsilon, curve.ToDp(1e-9).epsilon);
}

TEST_P(NoiseSweepTest, CompositionDominatesParts) {
  // A composition's curve is pointwise >= each component's.
  RdpCurve a = GaussianCurve(Grid(), GetParam());
  RdpCurve b = LaplaceCurve(Grid(), 2.0);
  RdpCurve sum = a + b;
  EXPECT_TRUE(a.DominatedBy(sum));
  EXPECT_TRUE(b.DominatedBy(sum));
}

INSTANTIATE_TEST_SUITE_P(Noises, NoiseSweepTest,
                         testing::Values(0.5, 0.8, 1.0, 1.5, 2.0, 4.0, 8.0, 20.0));

// --- Sampling-rate monotonicity across the q range used by the generators. ---

class SamplingSweepTest : public testing::TestWithParam<double> {};

TEST_P(SamplingSweepTest, AmplificationMonotoneInRate) {
  double q = GetParam();
  RdpCurve lo = SubsampledGaussianCurve(Grid(), 1.2, q);
  RdpCurve hi = SubsampledGaussianCurve(Grid(), 1.2, std::min(1.0, q * 2.0));
  EXPECT_TRUE(lo.DominatedBy(hi));
}

TEST_P(SamplingSweepTest, SubsampledNeverWorseThanBaseAtIntegerOrders) {
  double q = GetParam();
  RdpCurve sub = SubsampledLaplaceCurve(Grid(), 1.0, q);
  RdpCurve base = LaplaceCurve(Grid(), 1.0);
  for (double alpha : {2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 16.0, 32.0, 64.0}) {
    size_t i = Grid()->IndexOf(alpha);
    EXPECT_LE(sub.epsilon(i), base.epsilon(i) + 1e-12) << "q=" << q << " alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplingSweepTest,
                         testing::Values(1e-4, 1e-3, 0.01, 0.05, 0.1, 0.25, 0.5));

// --- Budget monotonicity for filters and capacity curves. ---

class BudgetSweepTest : public testing::TestWithParam<double> {};

TEST_P(BudgetSweepTest, CapacityMonotoneInEpsG) {
  double eps_g = GetParam();
  RdpCurve smaller = BlockCapacityCurve(Grid(), eps_g, 1e-7);
  RdpCurve larger = BlockCapacityCurve(Grid(), eps_g * 2.0, 1e-7);
  EXPECT_TRUE(smaller.DominatedBy(larger));
}

TEST_P(BudgetSweepTest, FilterAdmitsMoreWithLargerBudget) {
  double eps_g = GetParam();
  RdpCurve step = GaussianCurve(Grid(), 4.0);
  auto count = [&](double eps) {
    PrivacyFilter filter(Grid(), eps, 1e-7);
    int admitted = 0;
    while (filter.TryCharge(step) && admitted < 100000) {
      ++admitted;
    }
    return admitted;
  };
  EXPECT_LE(count(eps_g), count(eps_g * 2.0));
}

TEST_P(BudgetSweepTest, FilterNeverBreaksGuarantee) {
  double eps_g = GetParam();
  double delta_g = 1e-7;
  PrivacyFilter filter(Grid(), eps_g, delta_g);
  RdpCurve step = SubsampledGaussianCurve(Grid(), 1.0, 0.05).Repeat(50);
  while (filter.TryCharge(step)) {
  }
  double best_eps = 1e300;
  for (size_t i = 0; i < Grid()->size(); ++i) {
    if (filter.budget().epsilon(i) > 0.0 &&
        filter.consumed().epsilon(i) <= filter.budget().epsilon(i) + 1e-6) {
      best_eps = std::min(best_eps, filter.consumed().epsilon(i) +
                                        std::log(1.0 / delta_g) / (Grid()->order(i) - 1.0));
    }
  }
  EXPECT_LE(best_eps, eps_g + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweepTest, testing::Values(2.0, 5.0, 10.0, 20.0));

}  // namespace
}  // namespace dpack
