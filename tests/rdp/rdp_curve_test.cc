#include "src/rdp/rdp_curve.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

TEST(RdpCurveTest, DefaultIsZero) {
  RdpCurve curve(Grid());
  EXPECT_TRUE(curve.IsZero());
  for (size_t i = 0; i < curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve.epsilon(i), 0.0);
  }
}

TEST(RdpCurveTest, CompositionIsPointwiseAdditive) {
  std::vector<double> e1(Grid()->size(), 1.0);
  std::vector<double> e2(Grid()->size(), 0.0);
  for (size_t i = 0; i < e2.size(); ++i) {
    e2[i] = static_cast<double>(i);
  }
  RdpCurve a(Grid(), e1);
  RdpCurve b(Grid(), e2);
  RdpCurve sum = a + b;
  for (size_t i = 0; i < sum.size(); ++i) {
    EXPECT_DOUBLE_EQ(sum.epsilon(i), 1.0 + static_cast<double>(i));
  }
}

TEST(RdpCurveTest, ScaledAndRepeat) {
  std::vector<double> e(Grid()->size(), 2.0);
  RdpCurve curve(Grid(), e);
  RdpCurve tripled = curve.Repeat(3);
  for (size_t i = 0; i < tripled.size(); ++i) {
    EXPECT_DOUBLE_EQ(tripled.epsilon(i), 6.0);
  }
  EXPECT_TRUE(curve.Scaled(0.0).IsZero());
}

TEST(RdpCurveTest, SaturatingSubtractClampsAtZero) {
  std::vector<double> big(Grid()->size(), 3.0);
  std::vector<double> small(Grid()->size(), 5.0);
  RdpCurve a(Grid(), big);
  RdpCurve b(Grid(), small);
  RdpCurve diff = a.SaturatingSubtract(b);
  EXPECT_TRUE(diff.IsZero());
}

TEST(RdpCurveTest, DominatedBy) {
  std::vector<double> lo(Grid()->size(), 1.0);
  std::vector<double> hi(Grid()->size(), 2.0);
  RdpCurve a(Grid(), lo);
  RdpCurve b(Grid(), hi);
  EXPECT_TRUE(a.DominatedBy(b));
  EXPECT_FALSE(b.DominatedBy(a));
  EXPECT_TRUE(a.DominatedBy(a));
}

TEST(RdpCurveTest, ToDpUsesEqTwo) {
  // A flat curve: eps_dp(alpha) = eps + log(1/delta)/(alpha-1) minimized at the largest
  // alpha.
  std::vector<double> flat(Grid()->size(), 1.0);
  RdpCurve curve(Grid(), flat);
  DpTranslation t = curve.ToDp(1e-6);
  EXPECT_EQ(t.alpha_index, Grid()->size() - 1);
  EXPECT_DOUBLE_EQ(t.alpha, 64.0);
  EXPECT_NEAR(t.epsilon, 1.0 + std::log(1e6) / 63.0, 1e-12);
}

TEST(RdpCurveTest, ToDpPicksInteriorBestAlpha) {
  // A steeply increasing curve moves the best order to the interior.
  std::vector<double> eps(Grid()->size());
  for (size_t i = 0; i < eps.size(); ++i) {
    double alpha = Grid()->order(i);
    eps[i] = alpha * alpha / 30.0;
  }
  RdpCurve curve(Grid(), eps);
  DpTranslation t = curve.ToDp(1e-6);
  EXPECT_GT(t.alpha_index, 0u);
  EXPECT_LT(t.alpha_index, Grid()->size() - 1);
  // It must actually be the minimum across the grid.
  for (size_t i = 0; i < eps.size(); ++i) {
    double candidate = eps[i] + std::log(1e6) / (Grid()->order(i) - 1.0);
    EXPECT_LE(t.epsilon, candidate + 1e-12);
  }
}

TEST(RdpCurveTest, MinEpsilon) {
  std::vector<double> eps(Grid()->size(), 5.0);
  eps[3] = 0.5;
  RdpCurve curve(Grid(), eps);
  EXPECT_DOUBLE_EQ(curve.MinEpsilon(), 0.5);
  EXPECT_EQ(curve.MinEpsilonIndex(), 3u);
}

TEST(BlockCapacityCurveTest, MatchesFilterInitialization) {
  // capacity(alpha) = eps_g - log(1/delta_g)/(alpha-1), clamped at 0 (§3.4).
  RdpCurve capacity = BlockCapacityCurve(Grid(), 10.0, 1e-7);
  double log_term = std::log(1e7);
  for (size_t i = 0; i < Grid()->size(); ++i) {
    double alpha = Grid()->order(i);
    double expected = std::max(0.0, 10.0 - log_term / (alpha - 1.0));
    EXPECT_NEAR(capacity.epsilon(i), expected, 1e-12) << "alpha=" << alpha;
  }
  // Low orders are unusable for this budget, high orders close to eps_g.
  EXPECT_DOUBLE_EQ(capacity.epsilon(0), 0.0);
  EXPECT_GT(capacity.epsilon(Grid()->size() - 1), 9.0);
}

TEST(BlockCapacityCurveTest, TranslationRoundTripGuarantee) {
  // Consuming exactly the capacity at one order must translate back to <= (eps_g, delta_g).
  double eps_g = 5.0;
  double delta_g = 1e-6;
  RdpCurve capacity = BlockCapacityCurve(Grid(), eps_g, delta_g);
  for (size_t i = 0; i < Grid()->size(); ++i) {
    if (capacity.epsilon(i) <= 0.0) {
      continue;
    }
    // Translating a consumption equal to the order-i capacity through order i gives back
    // exactly eps_g, so any admitted workload translates to <= (eps_g, delta_g)-DP.
    double eps_dp = capacity.epsilon(i) + std::log(1.0 / delta_g) / (Grid()->order(i) - 1.0);
    EXPECT_NEAR(eps_dp, eps_g, 1e-9);
  }
}

TEST(ComposeCurvesTest, SumsSpan) {
  std::vector<double> e(Grid()->size(), 1.5);
  std::vector<RdpCurve> curves(4, RdpCurve(Grid(), e));
  RdpCurve total = ComposeCurves(curves);
  for (size_t i = 0; i < total.size(); ++i) {
    EXPECT_DOUBLE_EQ(total.epsilon(i), 6.0);
  }
}

TEST(RdpCurveDeathTest, GridMismatchAborts) {
  RdpCurve a(Grid());
  RdpCurve b(AlphaGrid::TraditionalDp());
  EXPECT_DEATH(a.Accumulate(b), "grid");
}

TEST(RdpCurveDeathTest, NegativeEpsilonAborts) {
  std::vector<double> eps(Grid()->size(), -1.0);
  EXPECT_DEATH(RdpCurve(Grid(), eps), "non-negative");
}

}  // namespace
}  // namespace dpack
