#include "src/rdp/accountant.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/rdp/mechanisms.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

TEST(PrivacyFilterTest, BudgetMatchesBlockCapacityCurve) {
  PrivacyFilter filter(Grid(), 10.0, 1e-7);
  RdpCurve expected = BlockCapacityCurve(Grid(), 10.0, 1e-7);
  for (size_t i = 0; i < Grid()->size(); ++i) {
    EXPECT_DOUBLE_EQ(filter.budget().epsilon(i), expected.epsilon(i));
  }
  EXPECT_TRUE(filter.consumed().IsZero());
}

TEST(PrivacyFilterTest, ChargesUntilBudgetSpent) {
  PrivacyFilter filter(Grid(), 8.0, 1e-6);
  RdpCurve step = GaussianCurve(Grid(), 3.0);
  int admitted = 0;
  while (filter.TryCharge(step)) {
    ++admitted;
  }
  EXPECT_GT(admitted, 0);
  EXPECT_EQ(filter.charges(), static_cast<uint64_t>(admitted));
  // Rejected charge did not change state.
  RdpCurve consumed = filter.consumed();
  EXPECT_FALSE(filter.TryCharge(step));
  for (size_t i = 0; i < Grid()->size(); ++i) {
    EXPECT_DOUBLE_EQ(filter.consumed().epsilon(i), consumed.epsilon(i));
  }
}

TEST(PrivacyFilterTest, ExistsAlphaSemantics) {
  PrivacyFilter filter(Grid(), 10.0, 1e-7);
  // Over budget everywhere except alpha = 64.
  std::vector<double> eps(Grid()->size(), 100.0);
  eps[Grid()->IndexOf(64.0)] = 1.0;
  RdpCurve spiky(Grid(), eps);
  EXPECT_TRUE(filter.CanCharge(spiky));
  EXPECT_TRUE(filter.TryCharge(spiky));
}

TEST(PrivacyFilterTest, SmallerChargeMayFollowRejection) {
  PrivacyFilter filter(Grid(), 6.0, 1e-6);
  RdpCurve big = GaussianCurve(Grid(), 1.0).Repeat(4);
  RdpCurve small = GaussianCurve(Grid(), 20.0);
  while (filter.TryCharge(big)) {
  }
  EXPECT_FALSE(filter.CanCharge(big));
  EXPECT_TRUE(filter.TryCharge(small));  // The filter is not halted by a rejection.
}

TEST(PrivacyFilterTest, GuaranteeHoldsAfterAdaptiveSequence) {
  // Property 6: after any admitted adaptive sequence, translating the consumed loss at some
  // order certifies (eps_g, delta_g)-DP.
  double eps_g = 5.0;
  double delta_g = 1e-6;
  Rng rng(3);
  PrivacyFilter filter(Grid(), eps_g, delta_g);
  for (int round = 0; round < 200; ++round) {
    RdpCurve loss = rng.Bernoulli(0.5)
                        ? GaussianCurve(Grid(), rng.Uniform(2.0, 20.0))
                        : LaplaceCurve(Grid(), rng.Uniform(2.0, 30.0));
    filter.TryCharge(loss);
  }
  bool certified = false;
  for (size_t i = 0; i < Grid()->size(); ++i) {
    if (filter.budget().epsilon(i) <= 0.0) {
      continue;
    }
    if (filter.consumed().epsilon(i) <= filter.budget().epsilon(i) + 1e-6) {
      double eps_dp = filter.consumed().epsilon(i) +
                      std::log(1.0 / delta_g) / (Grid()->order(i) - 1.0);
      EXPECT_LE(eps_dp, eps_g + 1e-6);
      certified = true;
    }
  }
  EXPECT_TRUE(certified);
}

TEST(PrivacyFilterTest, ExhaustedDetection) {
  PrivacyFilter filter(Grid(), 10.0, 1e-7);
  EXPECT_FALSE(filter.Exhausted());
  std::vector<double> eps(Grid()->size(), 100.0);
  size_t i64 = Grid()->IndexOf(64.0);
  eps[i64] = filter.budget().epsilon(i64);
  EXPECT_TRUE(filter.TryCharge(RdpCurve(Grid(), eps)));
  EXPECT_TRUE(filter.Exhausted());
}

TEST(PrivacyFilterTest, ExhaustedToleratesFloatNoise) {
  // Regression: Exhausted() used an exact comparison while CanCharge allows a
  // 1e-9 * (1 + cap) slack, so a filter filled to within float noise of capacity reported
  // non-exhausted forever. Both checks now share the tolerance.
  PrivacyFilter filter(Grid(), 10.0, 1e-7);
  // Fill every usable order to capacity minus a sliver far below the admission slack.
  std::vector<double> eps(Grid()->size(), 0.0);
  for (size_t i = 0; i < Grid()->size(); ++i) {
    double cap = filter.budget().epsilon(i);
    eps[i] = cap > 0.0 ? cap * (1.0 - 1e-12) : 100.0;
  }
  EXPECT_TRUE(filter.TryCharge(RdpCurve(Grid(), eps)));
  EXPECT_TRUE(filter.Exhausted());
}

TEST(PrivacyFilterTest, NotExhaustedWithUsableRemainder) {
  PrivacyFilter filter(Grid(), 10.0, 1e-7);
  // Consume 90% everywhere: every usable order keeps a meaningful remainder.
  std::vector<double> eps(Grid()->size(), 0.0);
  for (size_t i = 0; i < Grid()->size(); ++i) {
    eps[i] = 0.9 * std::max(filter.budget().epsilon(i), 0.0);
  }
  EXPECT_TRUE(filter.TryCharge(RdpCurve(Grid(), eps)));
  EXPECT_FALSE(filter.Exhausted());
}

TEST(PrivacyFilterTest, RemainingClampsAtZero) {
  PrivacyFilter filter(Grid(), 10.0, 1e-7);
  std::vector<double> eps(Grid()->size(), 50.0);
  eps[Grid()->IndexOf(64.0)] = 1.0;
  filter.TryCharge(RdpCurve(Grid(), eps));
  RdpCurve remaining = filter.Remaining();
  for (size_t i = 0; i < Grid()->size(); ++i) {
    EXPECT_GE(remaining.epsilon(i), 0.0);
  }
  EXPECT_GT(remaining.epsilon(Grid()->IndexOf(64.0)), 0.0);
}

TEST(PrivacyOdometerTest, AccumulatesAndTranslates) {
  PrivacyOdometer odometer(Grid());
  RdpCurve step = GaussianCurve(Grid(), 2.0);
  DpTranslation after1 = [&] {
    odometer.Charge(step);
    return odometer.CurrentDp(1e-6);
  }();
  DpTranslation after10 = [&] {
    for (int i = 0; i < 9; ++i) {
      odometer.Charge(step);
    }
    return odometer.CurrentDp(1e-6);
  }();
  EXPECT_EQ(odometer.charges(), 10u);
  EXPECT_GT(after10.epsilon, after1.epsilon);
  // RDP composition: 10 steps cost far less than 10x the single translation (sqrt scaling).
  EXPECT_LT(after10.epsilon, 10.0 * after1.epsilon);
}

TEST(PrivacyOdometerTest, MonotoneInCharges) {
  PrivacyOdometer odometer(Grid());
  double last = 0.0;
  for (int i = 0; i < 20; ++i) {
    odometer.Charge(SubsampledGaussianCurve(Grid(), 1.0, 0.02));
    double eps = odometer.CurrentDp(1e-6).epsilon;
    EXPECT_GE(eps, last);
    last = eps;
  }
}

TEST(FilterOdometerConsistencyTest, FilterAdmitsWhatOdometerSaysFits) {
  // Charging the same sequence, the filter accepts exactly while the odometer's consumption
  // stays within the filter budget at some order.
  PrivacyFilter filter(Grid(), 6.0, 1e-6);
  PrivacyOdometer odometer(Grid());
  RdpCurve step = LaplaceCurve(Grid(), 3.0);
  for (int i = 0; i < 100; ++i) {
    RdpCurve next = odometer.consumed() + step;
    bool fits = false;
    for (size_t a = 0; a < Grid()->size(); ++a) {
      double cap = filter.budget().epsilon(a);
      if (cap > 0.0 && next.epsilon(a) <= cap + 1e-9 * (1.0 + cap)) {
        fits = true;
      }
    }
    EXPECT_EQ(filter.TryCharge(step), fits);
    if (fits) {
      odometer.Charge(step);
    } else {
      break;
    }
  }
}

}  // namespace
}  // namespace dpack
