// Randomized scenario-spec fuzzer (ISSUE 5): draws scenario specs uniformly from the whole
// knob space, runs each through a randomly-shaped engine, and asserts the global invariants
// no workload may ever break:
//   - budget safety: no block's consumed budget exceeds its (eps_g, delta_g)-derived
//     capacity at every order (the Rényi filter admits on "exists alpha", so at least one
//     order must stay within capacity — and no order may be overdrawn beyond the unlocked
//     fraction's admission tolerance);
//   - conservation: granted + evicted + still-pending == submitted == generated;
//   - unlock monotonicity: a later checkpoint never shows a block less unlocked than an
//     earlier one, and fractions stay in [0, 1];
//   - engine equivalence: the engine under test grants exactly what the recompute
//     reference grants, and a mid-run kill + resume stitches back to the same trace.
//
// Every iteration logs its seed via SCOPED_TRACE; replay one seed with
//   DPACK_FUZZ_REPLAY_SEED=<seed> ./dpack_tests_integration_scenario_fuzz_test
// The CI soak is bounded by DPACK_FUZZ_ITERATIONS (default 100).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/scheduler.h"
#include "src/orchestrator/checkpoint.h"
#include "src/rdp/rdp_curve.h"
#include "src/sim/sim_driver.h"
#include "src/workload/curve_pool.h"
#include "src/workload/scenario.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

const CurvePool& Pool() {
  static const CurvePool pool(Grid(), BlockCapacityCurve(Grid(), 10.0, 1e-7));
  return pool;
}

// A spec drawn uniformly from the whole knob space, sized so one run stays test-fast.
ScenarioSpec RandomSpec(Rng& rng) {
  ScenarioSpec spec;
  spec.name = "fuzz";
  spec.seed = static_cast<uint64_t>(rng.UniformInt(0, 1 << 30));

  spec.block_pattern = static_cast<BlockArrivalPattern>(rng.UniformInt(0, 2));
  spec.num_blocks = static_cast<size_t>(rng.UniformInt(2, 10));
  spec.block_interval = rng.Uniform(0.5, 1.5);
  spec.cohort_size = static_cast<size_t>(rng.UniformInt(1, 4));
  spec.jitter_fraction = rng.Uniform(0.0, 0.5);

  spec.arrival = static_cast<ArrivalProcess>(rng.UniformInt(0, 3));
  spec.task_span = rng.Uniform(6.0, 12.0);
  spec.task_rate = rng.Uniform(1.0, 5.0);
  spec.burst_on = rng.Uniform(1.0, 3.0);
  spec.burst_off = rng.Uniform(0.0, 3.0);
  spec.burst_floor = rng.Uniform(0.0, 0.5);
  spec.diurnal_period = rng.Uniform(3.0, 9.0);
  spec.diurnal_amplitude = rng.Uniform(0.0, 1.0);

  spec.mix = static_cast<MechanismMix>(rng.UniformInt(0, 2));
  spec.center_alpha = rng.Uniform(2.0, 10.0);
  spec.sigma_alpha = rng.Uniform(0.0, 4.0);
  spec.best_alpha_skew = rng.Uniform(0.5, 3.0);

  spec.demand = static_cast<DemandDistribution>(rng.UniformInt(0, 4));
  spec.eps_min = rng.Uniform(0.02, 0.3);
  spec.eps_min_lo = rng.Uniform(0.01, 0.05);
  spec.eps_min_hi = spec.eps_min_lo + rng.Uniform(0.05, 0.45);
  spec.zipf_exponent = rng.Uniform(0.5, 2.0);
  spec.zipf_levels = static_cast<size_t>(rng.UniformInt(2, 10));
  spec.pareto_shape = rng.Uniform(0.5, 1.5);
  spec.capacity_divisor = static_cast<size_t>(rng.UniformInt(1, 10));

  spec.weights = static_cast<WeightDistribution>(rng.UniformInt(0, 2));
  spec.weight_pareto_shape = rng.Uniform(0.8, 1.5);

  spec.selection = static_cast<BlockSelectionPolicy>(rng.UniformInt(0, 2));
  spec.mu_blocks = rng.Uniform(1.0, 5.0);
  spec.sigma_blocks = rng.Uniform(0.0, 2.0);
  spec.max_blocks_per_task = static_cast<size_t>(rng.UniformInt(1, 8));
  spec.hotspot_fraction = rng.Uniform(0.0, 0.95);
  spec.hotspot_blocks = static_cast<size_t>(rng.UniformInt(1, 3));

  spec.timeouts = static_cast<TimeoutRegime>(rng.UniformInt(0, 2));
  spec.timeout = rng.Uniform(2.0, 8.0);
  spec.timeout_fraction = rng.Uniform(0.0, 1.0);

  spec.unlock_steps = rng.UniformInt(2, 12);
  return spec;
}

std::unique_ptr<Scheduler> MakeScheduler(GreedyMetric metric, bool incremental,
                                         size_t num_shards = 1, bool async = false) {
  return std::make_unique<GreedyScheduler>(
      metric, GreedySchedulerOptions{.eta = 0.05,
                                     .incremental = incremental,
                                     .num_shards = num_shards,
                                     .async = async});
}

// Budget safety against a captured cluster state. The Rényi filter admits on "exists
// alpha" — a Commit charges every order, so individual orders may legitimately exceed
// capacity — and each admission was checked against the then-unlocked capacity. Since
// consumption only changes at commits and unlocking only grows, every observable state
// must still have at least one order whose cumulative consumption fits the unlocked
// budget (within CanAccept's 1e-9 * (1 + cap) admission tolerance). That witness order is
// what bounds the block's traditional-DP translation by (eps_g, delta_g).
void CheckBudgetSafety(const ClusterSnapshot& snapshot, const std::string& label) {
  RdpCurve capacity = BlockCapacityCurve(Grid(), snapshot.eps_g, snapshot.delta_g);
  for (const SnapshotBlockState& block : snapshot.blocks) {
    ASSERT_EQ(block.consumed.size(), capacity.size()) << label;
    ASSERT_GE(block.unlocked_fraction, 0.0) << label;
    ASSERT_LE(block.unlocked_fraction, 1.0) << label;
    bool within_some_order = false;
    for (size_t a = 0; a < capacity.size(); ++a) {
      EXPECT_GE(block.consumed[a], 0.0) << label << " block " << block.id << " order " << a;
      double unlocked = block.unlocked_fraction * capacity.epsilon(a);
      if (capacity.epsilon(a) > 0.0 &&
          block.consumed[a] <= unlocked + 1e-9 * (1.0 + unlocked)) {
        within_some_order = true;
      }
    }
    EXPECT_TRUE(within_some_order)
        << label << " block " << block.id
        << " exceeds its (eps_g, delta_g) budget at every order";
    // Retirement invariant: a retired block must be provably immutable — fully unlocked
    // and consumed to within the admission slack at every usable order (so no future
    // commit or unlock can ever touch it again).
    if (block.retired) {
      EXPECT_EQ(block.unlocked_fraction, 1.0)
          << label << " retired block " << block.id << " is not fully unlocked";
      for (size_t a = 0; a < capacity.size(); ++a) {
        double cap = capacity.epsilon(a);
        if (cap > 0.0) {
          EXPECT_GE(block.consumed[a] + 1e-9 * (1.0 + cap), cap)
              << label << " retired block " << block.id << " not exhausted at order " << a;
        }
      }
    }
  }
}

void RunFuzzIteration(uint64_t seed) {
  SCOPED_TRACE("fuzz seed=" + std::to_string(seed) +
               " (replay: DPACK_FUZZ_REPLAY_SEED=" + std::to_string(seed) + ")");
  Rng rng(seed);
  ScenarioSpec spec = RandomSpec(rng);
  GreedyMetric metric = static_cast<GreedyMetric>(rng.UniformInt(0, 3));
  size_t num_shards = static_cast<size_t>(rng.UniformInt(1, 4));
  bool async = rng.Bernoulli(0.5);

  ScenarioWorkload workload = GenerateScenario(Pool(), spec);
  workload.sim.record_grant_trace = true;
  workload.sim.num_shards = num_shards;
  workload.sim.async = async;

  // Reference: the recompute engine on the same stream.
  SimConfig ref_sim = workload.sim;
  ref_sim.num_shards = 0;
  ref_sim.async = false;
  SimResult reference = RunOnlineSimulation(MakeScheduler(metric, /*incremental=*/false),
                                            workload.tasks, ref_sim);

  // Engine under test, capturing the final cluster state (stop_after_cycles clamps to the
  // run's total cycle count, so this is the uninterrupted run plus a final snapshot).
  SimConfig full_sim = workload.sim;
  full_sim.stop_after_cycles = reference.cycles_run + 1000;
  SimResult full = RunOnlineSimulation(
      MakeScheduler(metric, /*incremental=*/true, num_shards, async), workload.tasks,
      full_sim);
  ASSERT_TRUE(full.snapshot.has_value());

  // Engine equivalence on an arbitrary workload shape.
  EXPECT_EQ(full.grant_trace, reference.grant_trace);
  EXPECT_EQ(full.cycles_run, reference.cycles_run);

  // Conservation: every generated task is submitted (the horizon covers every arrival),
  // and each ends in exactly one of granted / evicted / still-pending.
  EXPECT_EQ(full.metrics.submitted(), workload.tasks.size());
  EXPECT_EQ(full.metrics.allocated() + full.metrics.evicted() + full.pending_at_end,
            full.metrics.submitted());

  CheckBudgetSafety(*full.snapshot, "final state");

  if (reference.cycles_run >= 2) {
    // Mid-run kill: unlock monotonicity across checkpoints, and resume equivalence.
    SimConfig mid_sim = workload.sim;
    mid_sim.stop_after_cycles = std::max<size_t>(1, reference.cycles_run / 2);
    SimResult mid = RunOnlineSimulation(
        MakeScheduler(metric, /*incremental=*/true, num_shards, async), workload.tasks,
        mid_sim);
    ASSERT_TRUE(mid.snapshot.has_value());
    CheckBudgetSafety(*mid.snapshot, "mid state");

    // Blocks present at the mid checkpoint exist in the final state with the same id;
    // unlocked budget may only have grown since.
    ASSERT_LE(mid.snapshot->blocks.size(), full.snapshot->blocks.size());
    for (size_t b = 0; b < mid.snapshot->blocks.size(); ++b) {
      EXPECT_EQ(mid.snapshot->blocks[b].id, full.snapshot->blocks[b].id);
      EXPECT_LE(mid.snapshot->blocks[b].unlocked_fraction,
                full.snapshot->blocks[b].unlocked_fraction)
          << "unlocked budget regressed on block " << b;
    }

    SimResult resumed = ResumeOnlineSimulation(
        MakeScheduler(metric, /*incremental=*/true, num_shards, async), *mid.snapshot,
        workload.tasks, workload.sim);
    std::vector<std::vector<TaskId>> stitched = mid.grant_trace;
    stitched.insert(stitched.end(), resumed.grant_trace.begin(), resumed.grant_trace.end());
    EXPECT_EQ(stitched, reference.grant_trace);
  }
}

size_t FuzzIterations() {
  const char* env = std::getenv("DPACK_FUZZ_ITERATIONS");
  if (env != nullptr) {
    long long parsed = std::atoll(env);
    if (parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  return 100;  // The CI soak bound (acceptance: >= 100 randomized specs).
}

TEST(ScenarioFuzzTest, RandomizedSpecsHoldGlobalInvariants) {
  if (const char* replay = std::getenv("DPACK_FUZZ_REPLAY_SEED")) {
    RunFuzzIteration(static_cast<uint64_t>(std::atoll(replay)));
    return;
  }
  constexpr uint64_t kBaseSeed = 90210;
  size_t iterations = FuzzIterations();
  for (size_t i = 0; i < iterations; ++i) {
    RunFuzzIteration(kBaseSeed + i);
    if (testing::Test::HasFatalFailure() || testing::Test::HasNonfatalFailure()) {
      return;  // The SCOPED_TRACE of the failing seed is in the log; stop the soak.
    }
  }
}

}  // namespace
}  // namespace dpack
