// Engine-matrix differential harness over the scenario registry (ISSUE 5): every
// registered scenario must produce byte-identical grant traces across the full engine
// matrix — the recompute reference, the incremental engine, the sharded engine at shard
// counts {1, 2, 4, 7}, and the async per-shard-thread engine — crossed with both block
// partition modes (round-robin and id-range) and, on the async legs, both heap publication
// paths (the lock-free SPSC ring and the mutex/condvar handoff) — and must survive a
// kill-at-a-cycle + resume leg (through the binary wire format, reusing the PR 4 recovery
// machinery) that stitches back to the same trace. Runs under the TSan CI leg (the async
// legs spawn per-shard scheduler threads) and the shuffled ctest leg.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/scheduler.h"
#include "src/orchestrator/checkpoint.h"
#include "src/sim/sim_driver.h"
#include "src/workload/curve_pool.h"
#include "src/workload/scenario.h"

namespace dpack {
namespace {

constexpr uint64_t kScenarioSeed = 1234;

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

const CurvePool& Pool() {
  static const CurvePool pool(Grid(), BlockCapacityCurve(Grid(), 10.0, 1e-7));
  return pool;
}

std::unique_ptr<Scheduler> MakeScheduler(GreedyMetric metric, bool incremental,
                                         size_t num_shards = 1, bool async = false,
                                         BlockPartition partition = BlockPartition::kRoundRobin,
                                         HeapPublishMode publish = HeapPublishMode::kRing) {
  return std::make_unique<GreedyScheduler>(
      metric, GreedySchedulerOptions{.eta = 0.05,
                                     .incremental = incremental,
                                     .num_shards = num_shards,
                                     .async = async,
                                     .partition = partition,
                                     .publish = publish});
}

const char* PartitionName(BlockPartition partition) {
  return partition == BlockPartition::kRoundRobin ? "rr" : "range";
}

const char* PublishName(HeapPublishMode publish) {
  return publish == HeapPublishMode::kRing ? "ring" : "mutex";
}

// The deterministic face of the metrics (cycle runtimes are wall clock and excluded).
void ExpectMetricsEqual(const AllocationMetrics& actual, const AllocationMetrics& expected,
                        const std::string& label) {
  EXPECT_EQ(actual.submitted(), expected.submitted()) << label;
  EXPECT_EQ(actual.allocated(), expected.allocated()) << label;
  EXPECT_EQ(actual.evicted(), expected.evicted()) << label;
  EXPECT_EQ(actual.submitted_weight(), expected.submitted_weight()) << label;
  EXPECT_EQ(actual.allocated_weight(), expected.allocated_weight()) << label;
  EXPECT_EQ(actual.delays().samples(), expected.delays().samples()) << label;
}

// The scenario's workload plus the recompute reference trace every engine must reproduce.
struct ScenarioReference {
  ScenarioWorkload workload;
  SimResult reference;
};

ScenarioReference MakeReference(const std::string& name, GreedyMetric metric) {
  ScenarioReference ref;
  ref.workload = GenerateScenario(Pool(), ScenarioByName(name, kScenarioSeed));
  ref.workload.sim.record_grant_trace = true;
  ref.reference = RunOnlineSimulation(MakeScheduler(metric, /*incremental=*/false),
                                      ref.workload.tasks, ref.workload.sim);
  return ref;
}

class ScenarioMatrixTest : public testing::TestWithParam<GreedyMetric> {};

TEST_P(ScenarioMatrixTest, EveryScenarioMatchesRecomputeAcrossTheEngineMatrix) {
  for (const std::string& name : ScenarioRegistryNames()) {
    SCOPED_TRACE("scenario=" + name);
    ScenarioReference ref = MakeReference(name, GetParam());
    ASSERT_GT(ref.reference.cycles_run, 2u);
    // Every registered scenario must actually exercise scheduling under every metric —
    // a scenario that grants nothing proves nothing.
    ASSERT_GT(ref.reference.metrics.allocated(), 0u);

    struct EngineLeg {
      size_t shards;
      bool async;
      BlockPartition partition;
      HeapPublishMode publish;
    };
    // The sync legs cross the shard counts with both partition modes (publication mode is
    // meaningless there — the sharded engine has no publication step); the async legs
    // additionally cross ring-vs-mutex publication. Rings and partitions change *where*
    // blocks live and *how* heaps move, never merge order — every leg must be
    // byte-identical to the recompute reference.
    std::vector<EngineLeg> legs;
    for (BlockPartition partition :
         {BlockPartition::kRoundRobin, BlockPartition::kIdRange}) {
      for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
        legs.push_back({shards, false, partition, HeapPublishMode::kRing});
      }
      for (HeapPublishMode publish : {HeapPublishMode::kRing, HeapPublishMode::kMutex}) {
        for (size_t shards : {size_t{1}, size_t{4}, size_t{7}}) {
          legs.push_back({shards, true, partition, publish});
        }
      }
    }
    for (const EngineLeg& leg : legs) {
      std::string label = name + " shards=" + std::to_string(leg.shards) +
                          " async=" + std::to_string(leg.async) +
                          " partition=" + PartitionName(leg.partition) +
                          (leg.async ? std::string(" publish=") + PublishName(leg.publish)
                                     : std::string());
      SimConfig sim = ref.workload.sim;
      sim.num_shards = leg.shards;
      sim.async = leg.async;
      SimResult run = RunOnlineSimulation(
          MakeScheduler(GetParam(), /*incremental=*/true, leg.shards, leg.async,
                        leg.partition, leg.publish),
          ref.workload.tasks, sim);
      EXPECT_EQ(run.grant_trace, ref.reference.grant_trace) << label;
      EXPECT_EQ(run.cycles_run, ref.reference.cycles_run) << label;
      EXPECT_EQ(run.pending_at_end, ref.reference.pending_at_end) << label;
      ExpectMetricsEqual(run.metrics, ref.reference.metrics, label);
      if (GetParam() != GreedyMetric::kFcfs) {
        EXPECT_EQ(run.scheduler_stats.shards, leg.shards) << label;
        EXPECT_EQ(run.scheduler_stats.full_recomputes, 0u) << label;
        if (leg.async) {
          EXPECT_EQ(run.scheduler_stats.async_stale_publishes, 0u) << label;
          if (leg.publish == HeapPublishMode::kRing) {
            // Every shard publishes exactly once per dispatched cycle through its ring
            // (empty batches never dispatch), and the driver drains each ring every
            // cycle, so a push never has to retry.
            EXPECT_GE(run.scheduler_stats.ring_publishes, leg.shards) << label;
            EXPECT_EQ(run.scheduler_stats.ring_publishes % leg.shards, 0u) << label;
            EXPECT_EQ(run.scheduler_stats.ring_retries, 0u) << label;
          } else {
            EXPECT_EQ(run.scheduler_stats.ring_publishes, 0u) << label;
          }
        }
      }
    }
  }
}

TEST_P(ScenarioMatrixTest, KillAndResumeRestoresEveryScenario) {
  // The crash-restart leg of the matrix: for every scenario, kill the run at a
  // randomly-drawn cycle (sometimes mid-submission-drain) on a randomly-drawn engine
  // shape, ship the snapshot through the binary wire format, resume, and require the
  // stitched grant trace to equal the uninterrupted reference.
  for (const std::string& name : ScenarioRegistryNames()) {
    SCOPED_TRACE("scenario=" + name);
    ScenarioReference ref = MakeReference(name, GetParam());
    ASSERT_GT(ref.reference.cycles_run, 2u);

    Rng rng(kScenarioSeed ^ (static_cast<uint64_t>(GetParam()) + 1));
    for (int trial = 0; trial < 2; ++trial) {
      size_t k = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(ref.reference.cycles_run) - 1));
      bool mid_drain = rng.Bernoulli(0.5);
      size_t num_shards = static_cast<size_t>(rng.UniformInt(1, 4));
      bool async = rng.Bernoulli(0.5);
      BlockPartition partition =
          rng.Bernoulli(0.5) ? BlockPartition::kIdRange : BlockPartition::kRoundRobin;
      HeapPublishMode publish =
          rng.Bernoulli(0.5) ? HeapPublishMode::kMutex : HeapPublishMode::kRing;
      std::string label = name + " k=" + std::to_string(k) +
                          " mid_drain=" + std::to_string(mid_drain) +
                          " shards=" + std::to_string(num_shards) +
                          " async=" + std::to_string(async) +
                          " partition=" + PartitionName(partition) +
                          " publish=" + PublishName(publish);

      SimConfig split = ref.workload.sim;
      split.num_shards = num_shards;
      split.async = async;
      split.stop_after_cycles = k;
      split.stop_mid_drain = mid_drain;
      SimResult prefix =
          RunOnlineSimulation(MakeScheduler(GetParam(), /*incremental=*/true, num_shards,
                                            async, partition, publish),
                              ref.workload.tasks, split);
      ASSERT_TRUE(prefix.snapshot.has_value()) << label;

      SnapshotParseResult parsed = DecodeSnapshot(EncodeSnapshotBinary(*prefix.snapshot));
      ASSERT_TRUE(parsed.ok) << label << ": " << parsed.error;

      SimConfig resume = ref.workload.sim;
      resume.num_shards = num_shards;
      resume.async = async;
      SimResult resumed = ResumeOnlineSimulation(
          MakeScheduler(GetParam(), /*incremental=*/true, num_shards, async, partition,
                        publish),
          parsed.snapshot, ref.workload.tasks, resume);

      std::vector<std::vector<TaskId>> stitched = prefix.grant_trace;
      stitched.insert(stitched.end(), resumed.grant_trace.begin(),
                      resumed.grant_trace.end());
      EXPECT_EQ(stitched, ref.reference.grant_trace) << label;
      EXPECT_EQ(resumed.pending_at_end, ref.reference.pending_at_end) << label;
      ExpectMetricsEqual(resumed.metrics, ref.reference.metrics, label);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, ScenarioMatrixTest,
                         testing::Values(GreedyMetric::kDpack, GreedyMetric::kDpf,
                                         GreedyMetric::kArea, GreedyMetric::kFcfs),
                         [](const testing::TestParamInfo<GreedyMetric>& param_info) {
                           switch (param_info.param) {
                             case GreedyMetric::kDpack:
                               return "DPack";
                             case GreedyMetric::kDpf:
                               return "DPF";
                             case GreedyMetric::kArea:
                               return "Area";
                             case GreedyMetric::kFcfs:
                               return "FCFS";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace dpack
