// Retirement property suite (ISSUE 6): block retirement — compacting provably-immutable
// (exhausted, fully unlocked) blocks out of the hot slab — must never change what the
// scheduler grants, must survive the checkpoint codec and Clone() byte-exactly, and must be
// a deterministic function of the commit/unlock history on every engine. The retirement_churn
// scenario drives all of it under load: capacity-fraction demands exhaust blocks mid-run, so
// the hot tier compacts while grants are still being made.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/block/block_manager.h"
#include "src/core/scheduler.h"
#include "src/orchestrator/checkpoint.h"
#include "src/sim/sim_driver.h"
#include "src/workload/curve_pool.h"
#include "src/workload/scenario.h"

namespace dpack {
namespace {

constexpr uint64_t kScenarioSeed = 1234;

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

const CurvePool& Pool() {
  static const CurvePool pool(Grid(), BlockCapacityCurve(Grid(), 10.0, 1e-7));
  return pool;
}

std::unique_ptr<Scheduler> MakeScheduler(GreedyMetric metric, bool incremental,
                                         size_t num_shards = 1, bool async = false) {
  return std::make_unique<GreedyScheduler>(
      metric, GreedySchedulerOptions{.eta = 0.05,
                                     .incremental = incremental,
                                     .num_shards = num_shards,
                                     .async = async});
}

ScenarioWorkload ChurnWorkload() {
  ScenarioWorkload workload =
      GenerateScenario(Pool(), ScenarioByName("retirement_churn", kScenarioSeed));
  workload.sim.record_grant_trace = true;
  return workload;
}

size_t RetiredCount(const ClusterSnapshot& snapshot) {
  size_t retired = 0;
  for (const SnapshotBlockState& block : snapshot.blocks) {
    retired += block.retired ? 1 : 0;
  }
  return retired;
}

// A mid-run snapshot with both tiers populated (some blocks already retired, some still
// hot) — the interesting state for placement round-trip and determinism proofs. Scans
// forward from the earliest cycle; the scenario is tuned so such a cycle exists.
struct MidChurnState {
  ClusterSnapshot snapshot;
  size_t cycle = 0;
};

MidChurnState MidChurnSnapshot(const ScenarioWorkload& workload) {
  for (size_t k = 1; k < 200; ++k) {
    SimConfig sim = workload.sim;
    sim.stop_after_cycles = k;
    SimResult run = RunOnlineSimulation(MakeScheduler(GreedyMetric::kDpack, true),
                                        workload.tasks, sim);
    if (!run.snapshot.has_value()) {
      break;
    }
    size_t retired = RetiredCount(*run.snapshot);
    if (retired > 0 && retired < run.snapshot->blocks.size()) {
      return {std::move(*run.snapshot), k};
    }
    if (run.cycles_run < k) {
      break;  // The run ended before cycle k; no later checkpoint exists.
    }
  }
  ADD_FAILURE() << "retirement_churn never reached a mixed hot/retired state";
  return {};
}

TEST(RetirementTest, ChurnScenarioRetiresBlocksUnderLoad) {
  ScenarioWorkload workload = ChurnWorkload();
  SimResult run = RunOnlineSimulation(MakeScheduler(GreedyMetric::kDpack, true),
                                      workload.tasks, workload.sim);
  EXPECT_GT(run.metrics.allocated(), 0u);
  // The scenario must earn its name: blocks actually retire while the run still grants.
  EXPECT_GT(run.retired_at_end, 0u);
  EXPECT_LE(run.retired_at_end, run.blocks_created);
}

TEST(RetirementTest, PlacementRoundTripsThroughBothCodecs) {
  ScenarioWorkload workload = ChurnWorkload();
  MidChurnState mid = MidChurnSnapshot(workload);
  ASSERT_FALSE(mid.snapshot.blocks.empty());

  for (bool json : {false, true}) {
    SCOPED_TRACE(json ? "json" : "binary");
    std::string encoded =
        json ? EncodeSnapshotJson(mid.snapshot) : EncodeSnapshotBinary(mid.snapshot);
    SnapshotParseResult parsed = DecodeSnapshot(encoded);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_EQ(parsed.snapshot.blocks.size(), mid.snapshot.blocks.size());
    for (size_t j = 0; j < mid.snapshot.blocks.size(); ++j) {
      EXPECT_EQ(parsed.snapshot.blocks[j].retired, mid.snapshot.blocks[j].retired) << j;
      EXPECT_EQ(parsed.snapshot.blocks[j].slot, mid.snapshot.blocks[j].slot) << j;
    }

    // Restoring rebuilds the exact two-tier layout, and Clone() preserves it again.
    BlockManager restored = RestoreBlockManager(parsed.snapshot);
    BlockManager clone = restored.Clone();
    EXPECT_EQ(restored.retired_count(), RetiredCount(mid.snapshot));
    for (size_t j = 0; j < mid.snapshot.blocks.size(); ++j) {
      BlockId id = static_cast<BlockId>(j);
      BlockPlacement p = restored.placement_of(id);
      EXPECT_EQ(p.retired, mid.snapshot.blocks[j].retired) << j;
      EXPECT_EQ(p.slot, mid.snapshot.blocks[j].slot) << j;
      BlockPlacement cp = clone.placement_of(id);
      EXPECT_EQ(cp.retired, p.retired) << j;
      EXPECT_EQ(cp.slot, p.slot) << j;
      EXPECT_EQ(restored.block(id).version(), mid.snapshot.blocks[j].version) << j;
      EXPECT_EQ(restored.block(id).consumed().epsilons(), mid.snapshot.blocks[j].consumed)
          << j;
    }
  }
}

TEST(RetirementTest, TamperedPlacementIsRejected) {
  ScenarioWorkload workload = ChurnWorkload();
  MidChurnState mid = MidChurnSnapshot(workload);
  ASSERT_GT(RetiredCount(mid.snapshot), 0u);

  // Flipping a retired flag in the JSON text must trip the checksum (the placement is part
  // of the canonical payload both codecs hash).
  std::string json = EncodeSnapshotJson(mid.snapshot);
  size_t pos = json.find("\"retired\":true");
  ASSERT_NE(pos, std::string::npos);
  std::string tampered = json;
  tampered.replace(pos, 14, "\"retired\":false");
  SnapshotParseResult parsed = DecodeSnapshotJson(tampered);
  EXPECT_FALSE(parsed.ok);

  // Structural validation rejects inconsistent placements even when the checksum is
  // recomputed to match (a hand-built snapshot).
  ClusterSnapshot bad = mid.snapshot;
  size_t hot_a = SIZE_MAX;
  size_t hot_b = SIZE_MAX;
  size_t retired_j = SIZE_MAX;
  for (size_t j = 0; j < bad.blocks.size(); ++j) {
    if (bad.blocks[j].retired) {
      retired_j = j;
    } else if (hot_a == SIZE_MAX) {
      hot_a = j;
    } else if (hot_b == SIZE_MAX) {
      hot_b = j;
    }
  }
  ASSERT_NE(retired_j, SIZE_MAX);
  ASSERT_NE(hot_b, SIZE_MAX);

  ClusterSnapshot dup = mid.snapshot;
  dup.blocks[hot_a].slot = dup.blocks[hot_b].slot;
  EXPECT_NE(ValidateSnapshot(dup).find("duplicate block slot"), std::string::npos);

  ClusterSnapshot oob = mid.snapshot;
  oob.blocks[hot_a].slot = oob.blocks.size() + 100;
  EXPECT_NE(ValidateSnapshot(oob).find("slot out of range"), std::string::npos);

  ClusterSnapshot locked = mid.snapshot;
  locked.blocks[retired_j].unlocked_fraction = 0.5;
  EXPECT_NE(ValidateSnapshot(locked).find("fully unlocked"), std::string::npos);

  ClusterSnapshot fresh = mid.snapshot;
  fresh.blocks[retired_j].consumed.assign(fresh.blocks[retired_j].consumed.size(), 0.0);
  EXPECT_NE(ValidateSnapshot(fresh).find("must be exhausted"), std::string::npos);
}

TEST(RetirementTest, SweepIsDeterministicAcrossTheEngineMatrix) {
  ScenarioWorkload workload = ChurnWorkload();
  MidChurnState mid = MidChurnSnapshot(workload);
  ASSERT_FALSE(mid.snapshot.blocks.empty());

  struct EngineLeg {
    bool incremental;
    size_t shards;
    bool async;
  };
  const EngineLeg legs[] = {
      {false, 1, false}, {true, 2, false}, {true, 4, false}, {true, 4, true}};
  for (const EngineLeg& leg : legs) {
    std::string label = "incremental=" + std::to_string(leg.incremental) +
                        " shards=" + std::to_string(leg.shards) +
                        " async=" + std::to_string(leg.async);
    SimConfig sim = workload.sim;
    sim.num_shards = leg.shards;
    sim.async = leg.async;
    sim.stop_after_cycles = mid.cycle;
    SimResult run = RunOnlineSimulation(
        MakeScheduler(GreedyMetric::kDpack, leg.incremental, leg.shards, leg.async),
        workload.tasks, sim);
    ASSERT_TRUE(run.snapshot.has_value()) << label;
    ASSERT_EQ(run.snapshot->blocks.size(), mid.snapshot.blocks.size()) << label;
    for (size_t j = 0; j < mid.snapshot.blocks.size(); ++j) {
      EXPECT_EQ(run.snapshot->blocks[j].retired, mid.snapshot.blocks[j].retired)
          << label << " block " << j;
      EXPECT_EQ(run.snapshot->blocks[j].slot, mid.snapshot.blocks[j].slot)
          << label << " block " << j;
      EXPECT_EQ(run.snapshot->blocks[j].version, mid.snapshot.blocks[j].version)
          << label << " block " << j;
    }
  }
}

TEST(RetirementTest, KillAndResumePreservesRetirementState) {
  ScenarioWorkload workload = ChurnWorkload();
  SimResult reference = RunOnlineSimulation(MakeScheduler(GreedyMetric::kDpack, true),
                                            workload.tasks, workload.sim);
  ASSERT_GT(reference.retired_at_end, 0u);

  MidChurnState mid = MidChurnSnapshot(workload);
  SimConfig split = workload.sim;
  split.stop_after_cycles = mid.cycle;
  SimResult prefix = RunOnlineSimulation(MakeScheduler(GreedyMetric::kDpack, true),
                                         workload.tasks, split);
  ASSERT_TRUE(prefix.snapshot.has_value());

  // Ship through the binary wire format, resume, and require both the stitched grant
  // trace and the final retirement state to match the uninterrupted run.
  SnapshotParseResult parsed = DecodeSnapshot(EncodeSnapshotBinary(*prefix.snapshot));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  SimResult resumed = ResumeOnlineSimulation(MakeScheduler(GreedyMetric::kDpack, true),
                                             parsed.snapshot, workload.tasks, workload.sim);

  std::vector<std::vector<TaskId>> stitched = prefix.grant_trace;
  stitched.insert(stitched.end(), resumed.grant_trace.begin(), resumed.grant_trace.end());
  EXPECT_EQ(stitched, reference.grant_trace);
  EXPECT_EQ(resumed.retired_at_end, reference.retired_at_end);
}

}  // namespace
}  // namespace dpack
