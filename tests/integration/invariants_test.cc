// Parameterized system-level invariants: for every scheduler, over randomized workloads,
// scheduling never violates the privacy filters, never double-allocates, and records
// consistent metrics.

#include <set>

#include <gtest/gtest.h>

#include "src/dpack/dpack.h"

namespace dpack {
namespace {

struct InvariantCase {
  SchedulerKind kind;
  uint64_t seed;
};

std::string CaseName(const testing::TestParamInfo<InvariantCase>& info) {
  return SchedulerKindName(info.param.kind) + "_seed" + std::to_string(info.param.seed);
}

class SchedulerInvariantsTest : public testing::TestWithParam<InvariantCase> {
 protected:
  SchedulerInvariantsTest()
      : grid_(AlphaGrid::Default()),
        capacity_(BlockCapacityCurve(grid_, 10.0, 1e-7)),
        pool_(grid_, capacity_) {}

  std::vector<Task> RandomWorkload(uint64_t seed, size_t n) {
    Rng rng(seed);
    std::vector<Task> tasks;
    for (size_t i = 0; i < n; ++i) {
      size_t curve = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pool_.size()) - 1));
      RdpCurve demand = pool_.ScaledToEpsMin(curve, rng.Uniform(0.01, 0.5));
      Task t(static_cast<TaskId>(i), rng.Bernoulli(0.3) ? rng.Uniform(1.0, 10.0) : 1.0,
             std::move(demand));
      t.num_recent_blocks = static_cast<size_t>(rng.UniformInt(1, 6));
      t.arrival_time = rng.Uniform(0.0, 8.0);
      tasks.push_back(std::move(t));
    }
    return tasks;
  }

  AlphaGridPtr grid_;
  RdpCurve capacity_;
  CurvePool pool_;
};

TEST_P(SchedulerInvariantsTest, OfflineGrantsRespectFilters) {
  std::vector<Task> tasks = RandomWorkload(GetParam().seed, 60);
  BlockManager blocks(grid_, 10.0, 1e-7);
  for (int b = 0; b < 8; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }
  for (Task& t : tasks) {
    t.blocks = blocks.MostRecentBlocks(t.num_recent_blocks);
  }
  PkOptions opts;
  opts.time_limit_seconds = 10.0;
  std::unique_ptr<Scheduler> scheduler = CreateScheduler(GetParam().kind, 0.05, opts);
  std::vector<size_t> granted = scheduler->ScheduleBatch(tasks, blocks);

  // No duplicate grants; granted indices valid.
  std::set<size_t> unique(granted.begin(), granted.end());
  EXPECT_EQ(unique.size(), granted.size());
  for (size_t idx : granted) {
    EXPECT_LT(idx, tasks.size());
  }
  // Every touched block still certifies its guarantee at some usable order, and consumption
  // equals the sum of granted demands.
  for (size_t j = 0; j < blocks.block_count(); ++j) {
    const PrivacyBlock& block = blocks.block(static_cast<BlockId>(j));
    RdpCurve expected(grid_);
    for (size_t idx : granted) {
      for (BlockId b : tasks[idx].blocks) {
        if (static_cast<size_t>(b) == j) {
          expected.Accumulate(tasks[idx].demand);
        }
      }
    }
    for (size_t a = 0; a < grid_->size(); ++a) {
      EXPECT_NEAR(block.consumed().epsilon(a), expected.epsilon(a), 1e-9);
    }
    if (!expected.IsZero()) {
      bool certified = false;
      for (size_t a = 0; a < grid_->size(); ++a) {
        if (block.capacity().epsilon(a) > 0.0 &&
            block.consumed().epsilon(a) <= block.capacity().epsilon(a) + 1e-9) {
          certified = true;
        }
      }
      EXPECT_TRUE(certified) << "block " << j << " violates its filter";
    }
  }
}

TEST_P(SchedulerInvariantsTest, OnlineMetricsAreConsistent) {
  std::vector<Task> tasks = RandomWorkload(GetParam().seed + 100, 80);
  SimConfig sim;
  sim.num_blocks = 8;
  sim.unlock_steps = 5;
  PkOptions opts;
  opts.time_limit_seconds = 10.0;
  SimResult result =
      RunOnlineSimulation(CreateScheduler(GetParam().kind, 0.05, opts), tasks, sim);
  EXPECT_EQ(result.metrics.submitted(), tasks.size());
  EXPECT_EQ(result.metrics.allocated() + result.metrics.evicted() + result.pending_at_end,
            tasks.size());
  EXPECT_EQ(result.metrics.delays().count(), result.metrics.allocated());
  if (result.metrics.allocated() > 0) {
    EXPECT_GE(result.metrics.delays().Quantile(0.0), 0.0);
  }
  EXPECT_LE(result.metrics.allocated_weight(), result.metrics.submitted_weight() + 1e-9);
}

TEST_P(SchedulerInvariantsTest, GrantsAreMonotoneInBudget) {
  // Doubling every block's budget (two managers: eps_g 5 vs 10) never reduces the number of
  // allocated tasks for greedy schedulers on the same workload.
  if (GetParam().kind == SchedulerKind::kOptimal) {
    GTEST_SKIP() << "Optimal retries can reshuffle; monotonicity holds but is slow to check";
  }
  std::vector<Task> tasks = RandomWorkload(GetParam().seed + 200, 50);
  auto run = [&](double eps_g) {
    BlockManager blocks(grid_, eps_g, 1e-7);
    for (int b = 0; b < 6; ++b) {
      blocks.AddBlock(0.0, true);
    }
    std::vector<Task> copy = tasks;
    for (Task& t : copy) {
      t.blocks = blocks.MostRecentBlocks(t.num_recent_blocks);
    }
    return CreateScheduler(GetParam().kind)->ScheduleBatch(copy, blocks).size();
  };
  EXPECT_LE(run(6.0), run(12.0) + 2);  // Allow small greedy non-monotonicity slack.
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerInvariantsTest,
    testing::Values(InvariantCase{SchedulerKind::kDpack, 1},
                    InvariantCase{SchedulerKind::kDpack, 2},
                    InvariantCase{SchedulerKind::kDpack, 3},
                    InvariantCase{SchedulerKind::kDpf, 1},
                    InvariantCase{SchedulerKind::kDpf, 2},
                    InvariantCase{SchedulerKind::kDpf, 3},
                    InvariantCase{SchedulerKind::kArea, 1},
                    InvariantCase{SchedulerKind::kArea, 2},
                    InvariantCase{SchedulerKind::kFcfs, 1},
                    InvariantCase{SchedulerKind::kFcfs, 2},
                    InvariantCase{SchedulerKind::kOptimal, 1},
                    InvariantCase{SchedulerKind::kOptimal, 2}),
    CaseName);

}  // namespace
}  // namespace dpack
