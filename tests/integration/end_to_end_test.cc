// End-to-end integration: workload generators -> simulator -> schedulers, asserting the
// paper's qualitative results at small scale.

#include <gtest/gtest.h>

#include "src/dpack/dpack.h"

namespace dpack {
namespace {

class EndToEndTest : public testing::Test {
 protected:
  EndToEndTest()
      : grid_(AlphaGrid::Default()),
        capacity_(BlockCapacityCurve(grid_, 10.0, 1e-7)),
        pool_(grid_, capacity_) {}

  AlphaGridPtr grid_;
  RdpCurve capacity_;
  CurvePool pool_;
};

TEST_F(EndToEndTest, MicrobenchmarkHighBlockHeterogeneityFavorsDpack) {
  // Fig. 4(a) at the heterogeneous end: sigma_blocks = 3.
  MicrobenchmarkConfig config;
  config.num_tasks = 150;
  config.num_blocks = 20;
  config.mu_blocks = 10.0;
  config.sigma_blocks = 3.0;
  config.eps_min = 0.1;
  config.seed = 3;
  std::vector<Task> tasks = GenerateMicrobenchmark(pool_, config);

  SimConfig sim;
  sim.num_blocks = 20;
  auto run = [&](SchedulerKind kind) {
    auto scheduler = CreateScheduler(kind);
    return RunOfflineSchedule(*scheduler, tasks, sim).metrics.allocated();
  };
  size_t dpack = run(SchedulerKind::kDpack);
  size_t dpf = run(SchedulerKind::kDpf);
  EXPECT_GT(dpack, dpf);
}

TEST_F(EndToEndTest, MicrobenchmarkHomogeneousWorkloadShowsNoGap) {
  // Fig. 4 at sigma = 0: DPack and DPF perform comparably (within 10%).
  MicrobenchmarkConfig config;
  config.num_tasks = 150;
  config.num_blocks = 20;
  config.mu_blocks = 10.0;
  config.sigma_blocks = 0.0;
  config.sigma_alpha = 0.0;
  config.eps_min = 0.1;
  config.seed = 3;
  std::vector<Task> tasks = GenerateMicrobenchmark(pool_, config);

  SimConfig sim;
  sim.num_blocks = 20;
  auto run = [&](SchedulerKind kind) {
    auto scheduler = CreateScheduler(kind);
    return RunOfflineSchedule(*scheduler, tasks, sim).metrics.allocated();
  };
  double dpack = static_cast<double>(run(SchedulerKind::kDpack));
  double dpf = static_cast<double>(run(SchedulerKind::kDpf));
  EXPECT_NEAR(dpack / dpf, 1.0, 0.1);
}

TEST_F(EndToEndTest, MicrobenchmarkBestAlphaHeterogeneityFavorsDpack) {
  // Fig. 4(b) at sigma_alpha = 6, single block.
  MicrobenchmarkConfig config;
  config.num_tasks = 400;
  config.num_blocks = 1;
  config.mu_blocks = 1.0;
  config.sigma_alpha = 6.0;
  config.eps_min = 0.005;
  config.seed = 5;
  std::vector<Task> tasks = GenerateMicrobenchmark(pool_, config);

  SimConfig sim;
  sim.num_blocks = 1;
  auto run = [&](SchedulerKind kind) {
    auto scheduler = CreateScheduler(kind);
    return RunOfflineSchedule(*scheduler, tasks, sim).metrics.allocated();
  };
  size_t dpack = run(SchedulerKind::kDpack);
  size_t dpf = run(SchedulerKind::kDpf);
  size_t optimal = run(SchedulerKind::kOptimal);
  EXPECT_GT(dpack, dpf);
  EXPECT_GE(optimal, dpack);
  // Q1: DPack stays within ~23% of Optimal.
  EXPECT_GE(static_cast<double>(dpack), 0.75 * static_cast<double>(optimal));
}

TEST_F(EndToEndTest, AlibabaOnlineDpackBeatsDpfAndFcfs) {
  // Small-scale Fig. 6: online Alibaba-DP. DPack allocates the most tasks; the paper's
  // headline 1.3-1.7x gap over DPF shows up already at this scale.
  AlibabaConfig workload;
  workload.num_tasks = 6000;
  workload.arrival_span = 30.0;
  workload.seed = 11;
  std::vector<Task> tasks = GenerateAlibabaDp(pool_, workload);

  SimConfig sim;
  sim.num_blocks = 30;
  sim.unlock_steps = 20;
  auto run = [&](SchedulerKind kind) {
    return RunOnlineSimulation(CreateScheduler(kind), tasks, sim).metrics.allocated();
  };
  size_t dpack = run(SchedulerKind::kDpack);
  size_t dpf = run(SchedulerKind::kDpf);
  size_t fcfs = run(SchedulerKind::kFcfs);
  EXPECT_GE(static_cast<double>(dpack), 1.2 * static_cast<double>(dpf));
  EXPECT_GE(dpack, fcfs);
}

TEST_F(EndToEndTest, AlibabaFairnessTradeoff) {
  // §6.3: DPF allocates a higher *fraction* of fair-share tasks than DPack, while DPack
  // allocates more tasks in total.
  AlibabaConfig workload;
  workload.num_tasks = 3000;
  workload.arrival_span = 30.0;
  workload.seed = 13;
  std::vector<Task> tasks = GenerateAlibabaDp(pool_, workload);

  SimConfig sim;
  sim.num_blocks = 30;
  sim.unlock_steps = 20;
  sim.fair_share_n = 50;
  SimResult dpack = RunOnlineSimulation(CreateScheduler(SchedulerKind::kDpack), tasks, sim);
  SimResult dpf = RunOnlineSimulation(CreateScheduler(SchedulerKind::kDpf), tasks, sim);
  EXPECT_GT(dpack.metrics.allocated(), dpf.metrics.allocated());
  EXPECT_GE(dpf.metrics.AllocatedFairShareFraction(),
            dpack.metrics.AllocatedFairShareFraction());
}

TEST_F(EndToEndTest, AmazonUnweightedSchedulersComparable) {
  // Fig. 7(a): the low-heterogeneity Amazon workload leaves no room for improvement.
  AmazonConfig workload;
  workload.mean_tasks_per_block = 200.0;
  workload.arrival_span = 10.0;
  workload.seed = 17;
  std::vector<Task> tasks = GenerateAmazon(pool_, workload);

  SimConfig sim;
  sim.num_blocks = 10;
  sim.unlock_steps = 10;
  auto run = [&](SchedulerKind kind) {
    return RunOnlineSimulation(CreateScheduler(kind), tasks, sim).metrics.allocated();
  };
  double dpack = static_cast<double>(run(SchedulerKind::kDpack));
  double dpf = static_cast<double>(run(SchedulerKind::kDpf));
  EXPECT_NEAR(dpack / dpf, 1.0, 0.15);
}

TEST_F(EndToEndTest, AmazonWeightedDpackWinsOnUtility) {
  // Fig. 7(b): task weights create heterogeneity; DPack wins on sum of weights.
  AmazonConfig workload;
  workload.mean_tasks_per_block = 200.0;
  workload.arrival_span = 10.0;
  workload.weighted = true;
  workload.seed = 19;
  std::vector<Task> tasks = GenerateAmazon(pool_, workload);

  SimConfig sim;
  sim.num_blocks = 10;
  sim.unlock_steps = 10;
  auto run = [&](SchedulerKind kind) {
    return RunOnlineSimulation(CreateScheduler(kind), tasks, sim).metrics.allocated_weight();
  };
  EXPECT_GE(run(SchedulerKind::kDpack), run(SchedulerKind::kDpf));
}

}  // namespace
}  // namespace dpack
