// Seeded violation: iterating an unordered container on a grant-ordering path. The
// iteration order is hash-seed dependent, so any grant sequence derived from it differs
// across runs/processes — exactly the bug class the differential suites can only sample.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dpack {

// dpack-lint: allow(unordered-member): lookup-only — fixture isolates the iteration rule.
static std::unordered_map<uint64_t, double> scores_by_task;

std::vector<uint64_t> GrantOrder() {
  std::vector<uint64_t> order;
  for (const auto& entry : scores_by_task) {  // <- unordered-iteration must fire here.
    order.push_back(entry.first);
  }
  return order;
}

}  // namespace dpack
