// Positive control for the negative compile test: the same shape as
// thread_safety_violation.cc with the lock discipline intact. This MUST compile under
// -Werror=thread-safety — proving the flag is active and the wrappers are well-formed, so
// the violation fixture's failure can only come from the seeded violation itself.
#include "src/common/thread_annotations.h"

namespace dpack {

struct Account {
  Mutex mu;
  CondVar funds_cv;
  int balance GUARDED_BY(mu) = 0;

  void Deposit(int amount) {
    MutexLock lock(mu);
    balance += amount;
    funds_cv.NotifyAll();
  }

  int WaitForFunds() {
    MutexLock lock(mu);
    while (balance == 0) {
      funds_cv.Wait(mu);
    }
    return balance;
  }

  void ForkJoin() {
    MutexLock lock(mu);
    balance += 1;
    lock.Unlock();
    // ... work outside the critical section ...
    lock.Lock();
    balance -= 1;
  }
};

}  // namespace dpack

int main() {
  dpack::Account account;
  account.Deposit(1);
  account.ForkJoin();
  return account.WaitForFunds() == 1 ? 0 : 1;
}
