// Seeded violation: bare float equality on budget quantities. Budget feasibility must go
// through the blessed tolerance helpers (PrivacyBlock::CanAccept/CanCharge with their
// 1e-9*(1+cap) slack); exact == on doubles is representation-dependent.
namespace dpack {

bool ExactlyExhausted(double consumed, double capacity) {
  return consumed == capacity;  // <- float-equality must fire here.
}

bool DemandMatches(double demand, double granted) {
  return granted != demand;  // <- and here.
}

}  // namespace dpack
