// Seeded violation: a container ordered by pointer keys in grant-ordering code. Pointer
// order is allocation/ASLR dependent, so it injects per-process nondeterminism.
#include <map>

namespace dpack {

struct Task;

std::map<const Task*, double> score_by_task;  // <- pointer-keyed-order must fire here.

}  // namespace dpack
