// Seeded violation: an unordered container declared in grant-ordering code without the
// reviewed lookup-only justification annotation.
#include <cstdint>
#include <unordered_set>

namespace dpack {

struct Tracker {
  std::unordered_set<uint64_t> seen;  // <- unordered-member must fire here (no allow).
};

}  // namespace dpack
