// Seeded thread-safety violation: a GUARDED_BY field written without its mutex, plus a
// double-unlock. Under clang -Werror=thread-safety this file MUST FAIL to compile — the
// negative compile test (thread_safety_compile_test.cmake) asserts exactly that, so the
// annotation gate cannot silently rot into a no-op.
#include "src/common/thread_annotations.h"

namespace dpack {

struct Account {
  Mutex mu;
  int balance GUARDED_BY(mu) = 0;

  void DepositUnlocked(int amount) {
    balance += amount;  // <- writing a guarded field without holding mu.
  }

  void DoubleUnlock() {
    mu.Lock();
    mu.Unlock();
    mu.Unlock();  // <- releasing a capability that is no longer held.
  }
};

}  // namespace dpack

int main() {
  dpack::Account account;
  account.DepositUnlocked(1);
  account.DoubleUnlock();
  return 0;
}
