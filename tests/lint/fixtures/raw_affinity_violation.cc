// Seeded raw-affinity violation: direct affinity syscalls outside
// src/common/cpu_affinity.* bypass the cpuset-aware fallback and the pin_failures
// accounting. The lint self-test asserts the rule fires on every call form here.

#include <pthread.h>
#include <sched.h>

void PinSomewhere() {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(0, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);  // raw-affinity
  sched_setaffinity(0, sizeof(set), &set);                    // raw-affinity
}

void ReadMask() {
  cpu_set_t set;
  sched_getaffinity(0, sizeof(set), &set);               // raw-affinity
  pthread_getaffinity_np(pthread_self(), sizeof(set), &set);  // raw-affinity
}
