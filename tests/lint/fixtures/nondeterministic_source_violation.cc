// Seeded violation: unseeded randomness and wall-clock reads in engine code. Grant paths
// must be pure functions of (workload, seed, block state); src/common/rng.h is the blessed
// seeded source, and clocks may only feed metrics (with an allow annotation).
#include <chrono>
#include <cstdlib>

namespace dpack {

double JitterScore(double score) {
  return score + static_cast<double>(rand()) / RAND_MAX;  // <- nondeterministic-source.
}

double TieBreak() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // <- and here.
}

}  // namespace dpack
