// Seeded violation: a raw std::mutex outside src/common/thread_annotations.h. Every lock
// must go through the annotated wrappers so -Wthread-safety sees it.
#include <mutex>

namespace dpack {

struct Queue {
  std::mutex mu;  // <- raw-mutex must fire here.
  int depth = 0;

  void Push() {
    std::lock_guard<std::mutex> lock(mu);  // <- and here.
    ++depth;
  }
};

}  // namespace dpack
