// Near-miss patterns every rule must stay quiet on: this file is linted as src/core code
// and must produce zero findings. Each block below sits just outside a rule's boundary.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/common/thread_annotations.h"

namespace dpack {

// A comment naming std::mutex and std::condition_variable is not a use (raw-mutex).
// A string below names rand() and steady_clock::now() — also not a use.
inline const char* kDocs = "rand() and steady_clock::now() are banned in engine code";

struct CleanTracker {
  // Annotated unordered member: the allow carries the reviewed lookup-only proof.
  // dpack-lint: allow(unordered-member): lookup-only — point lookups in Demand(), never iterated.
  std::unordered_map<uint64_t, double> demand;
  std::map<uint64_t, double> ordered;  // Ordered containers iterate freely.

  double Demand(uint64_t id) const {
    auto it = demand.find(id);
    return it == demand.end() ? 0.0 : it->second;  // Iterator compare, not float-equality.
  }

  double Sum() const {
    double total = 0.0;
    for (const auto& entry : ordered) {  // Iterating the *ordered* map is fine.
      total += entry.second;
    }
    return total;
  }
};

// Capacity bookkeeping through size_t methods is not a budget comparison.
inline bool Grew(const std::vector<int>& v, size_t before) {
  return v.capacity() != before;  // dpack-lint: allow(float-equality): size_t bookkeeping.
}

// Null checks never trip float-equality even when the name contains a budget token.
inline bool HasDemands(const CleanTracker* demands) { return demands != nullptr; }

// Ordered comparisons on budget quantities are the sanctioned form.
inline bool Feasible(double consumed, double demand, double capacity) {
  return consumed + demand <= capacity + 1e-9 * (1.0 + capacity);
}

// Scoped-enum dispatch against a Type::kConstant is not a float comparison, even when the
// member name carries a budget token.
enum class DemandDistribution { kZipfEpsMin, kCapacityFraction };
struct CleanSpec {
  DemandDistribution demand = DemandDistribution::kZipfEpsMin;
};
inline bool IsZipf(const CleanSpec& spec) {
  return spec.demand == DemandDistribution::kZipfEpsMin;
}

// The annotated wrappers are the sanctioned lock primitives (raw-mutex quiet).
struct CleanQueue {
  Mutex mu;
  int depth GUARDED_BY(mu) = 0;

  void Push() {
    MutexLock lock(mu);
    ++depth;
  }
};

}  // namespace dpack
