#!/usr/bin/env python3
"""Self-test for scripts/dpack_lint.py: every rule must fire on its seeded fixture
violation and stay quiet on the near-miss fixture and the real tree. This is what keeps
the lint gate honest — a rule that silently stops matching fails here, not in review."""

import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
LINT = os.path.join(REPO_ROOT, "scripts", "dpack_lint.py")
FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")

# fixture file -> (lint-as repo path, rules that must fire)
VIOLATIONS = {
    "raw_mutex_violation.cc": ("src/common/queue.cc", {"raw-mutex"}),
    "raw_affinity_violation.cc": ("src/core/pinning.cc", {"raw-affinity"}),
    "unordered_iteration_violation.cc": ("src/core/order.cc", {"unordered-iteration"}),
    "unordered_member_violation.cc": ("src/core/tracker.cc", {"unordered-member"}),
    "nondeterministic_source_violation.cc": ("src/core/jitter.cc",
                                             {"nondeterministic-source"}),
    "pointer_keyed_order_violation.cc": ("src/block/scores.cc", {"pointer-keyed-order"}),
    "float_equality_violation.cc": ("src/block/budget.cc", {"float-equality"}),
}


def run_lint(*args):
    return subprocess.run([sys.executable, LINT, "--root", REPO_ROOT, *args],
                          capture_output=True, text=True)


class FixtureViolations(unittest.TestCase):
    def test_every_rule_fires_on_its_seeded_violation(self):
        for fixture, (as_path, rules) in VIOLATIONS.items():
            with self.subTest(fixture=fixture):
                proc = run_lint("--fixture", os.path.join(FIXTURES, fixture),
                                "--as", as_path)
                self.assertEqual(proc.returncode, 1,
                                 f"{fixture} should be rejected:\n{proc.stdout}")
                for rule in rules:
                    self.assertIn(f"[{rule}]", proc.stdout,
                                  f"{fixture} should trip {rule}:\n{proc.stdout}")

    def test_violations_fire_regardless_of_header_or_source_suffix(self):
        proc = run_lint("--fixture",
                        os.path.join(FIXTURES, "unordered_member_violation.cc"),
                        "--as", "src/core/tracker.h")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[unordered-member]", proc.stdout)

    def test_grant_ordering_rules_scoped_to_grant_dirs(self):
        # The same unordered iteration outside src/core|src/block|src/service is not in
        # scope (the raw-mutex rule is the only tree-wide one).
        proc = run_lint("--fixture",
                        os.path.join(FIXTURES, "unordered_iteration_violation.cc"),
                        "--as", "src/workload/order.cc")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_float_equality_reaches_src_workload(self):
        # Trace readers reparse budget doubles from text, where a bare == against a grid
        # value is the same representation trap as in the engines — so float-equality's
        # scope extends to src/workload while the other grant-ordering rules stay out
        # (test_grant_ordering_rules_scoped_to_grant_dirs above proves the non-widening).
        proc = run_lint("--fixture",
                        os.path.join(FIXTURES, "float_equality_violation.cc"),
                        "--as", "src/workload/trace_cmp.cc")
        self.assertEqual(proc.returncode, 1,
                         f"float-equality must fire in src/workload:\n{proc.stdout}")
        self.assertIn("[float-equality]", proc.stdout)

    def test_grant_ordering_rules_cover_the_service(self):
        # The multi-process service is grant-ordering code: the daemon merges scores and
        # the workers replicate scoring, so hash-order and wall-clock leaks there are as
        # fatal as in src/core. Every scoped rule must fire on src/service paths.
        service_scope = {
            "unordered_iteration_violation.cc": ("src/service/merge.cc",
                                                 "unordered-iteration"),
            "unordered_member_violation.cc": ("src/service/replica.h",
                                              "unordered-member"),
            "nondeterministic_source_violation.cc": ("src/service/deadline.cc",
                                                     "nondeterministic-source"),
            "pointer_keyed_order_violation.cc": ("src/service/routing.cc",
                                                 "pointer-keyed-order"),
            "float_equality_violation.cc": ("src/service/admission.cc",
                                            "float-equality"),
            "raw_mutex_violation.cc": ("src/service/transport_patch.cc", "raw-mutex"),
        }
        for fixture, (as_path, rule) in service_scope.items():
            with self.subTest(fixture=fixture, as_path=as_path):
                proc = run_lint("--fixture", os.path.join(FIXTURES, fixture),
                                "--as", as_path)
                self.assertEqual(proc.returncode, 1,
                                 f"{fixture} at {as_path} should be rejected:\n"
                                 f"{proc.stdout}")
                self.assertIn(f"[{rule}]", proc.stdout,
                              f"{fixture} at {as_path} should trip {rule}:\n"
                              f"{proc.stdout}")


class NearMisses(unittest.TestCase):
    def test_clean_fixture_produces_zero_findings(self):
        proc = run_lint("--fixture", os.path.join(FIXTURES, "clean.cc"),
                        "--as", "src/core/clean.cc")
        self.assertEqual(proc.returncode, 0,
                         f"near-miss fixture must be clean:\n{proc.stdout}")

    def test_allow_annotation_requires_a_reason(self):
        # An allow without a reason is not an allow: the annotation is a reviewed claim.
        with tempfile.NamedTemporaryFile("w", suffix=".cc", delete=False) as fh:
            fh.write("#include <unordered_map>\n"
                     "// dpack-lint: allow(unordered-member):\n"
                     "std::unordered_map<int, int> m;\n")
            path = fh.name
        try:
            proc = run_lint("--fixture", path, "--as", "src/core/m.cc")
            self.assertEqual(proc.returncode, 1, proc.stdout)
            self.assertIn("[unordered-member]", proc.stdout)
        finally:
            os.unlink(path)

    def test_allow_for_the_wrong_rule_does_not_suppress(self):
        with tempfile.NamedTemporaryFile("w", suffix=".cc", delete=False) as fh:
            fh.write("#include <unordered_map>\n"
                     "// dpack-lint: allow(float-equality): wrong rule name.\n"
                     "std::unordered_map<int, int> m;\n")
            path = fh.name
        try:
            proc = run_lint("--fixture", path, "--as", "src/core/m.cc")
            self.assertEqual(proc.returncode, 1, proc.stdout)
        finally:
            os.unlink(path)


class RealTree(unittest.TestCase):
    def test_tree_is_clean(self):
        proc = run_lint()
        self.assertEqual(proc.returncode, 0,
                         f"the real tree must lint clean:\n{proc.stdout}{proc.stderr}")

    def test_thread_annotations_header_is_the_only_raw_mutex_site(self):
        # The exemption is exactly one file; linting the header's own content as any other
        # path must fire, proving the exemption cannot widen silently.
        header = os.path.join(REPO_ROOT, "src", "common", "thread_annotations.h")
        proc = run_lint("--fixture", header, "--as", "src/common/other_header.h")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("[raw-mutex]", proc.stdout)

    def test_cpu_affinity_pair_is_the_only_raw_affinity_site(self):
        # Same exemption-cannot-widen proof for raw-affinity: the real helper's own source
        # linted as any other path must fire. Exercised in every code dir the rule covers.
        source = os.path.join(REPO_ROOT, "src", "common", "cpu_affinity.cc")
        for as_path in ("src/core/pin.cc", "src/common/affinity2.cc",
                        "bench/pin_leg.cc", "tests/core/pin_test.cc",
                        "examples/pin_demo.cpp"):
            with self.subTest(as_path=as_path):
                proc = run_lint("--fixture", source, "--as", as_path)
                self.assertEqual(proc.returncode, 1, proc.stdout)
                self.assertIn("[raw-affinity]", proc.stdout)


if __name__ == "__main__":
    unittest.main()
