# Negative compile test for the thread-safety annotation gate.
#
# Asserts, with the configured compiler:
#   1. (probe)    -Wthread-safety is accepted — otherwise SKIP (matched by the test's
#                 SKIP_REGULAR_EXPRESSION): gcc has no thread-safety analysis; the gate
#                 lives in the clang static-analysis CI job, and this skip keeps local gcc
#                 ctest runs green without weakening it.
#   2. (control)  fixtures/thread_safety_clean.cc compiles under -Werror=thread-safety —
#                 the flag is active and the Mutex/MutexLock/CondVar wrappers are sound.
#   3. (negative) fixtures/thread_safety_violation.cc FAILS to compile — a seeded
#                 GUARDED_BY write without the lock is rejected. If this ever *compiles*,
#                 the annotations have rotted into no-ops and the test fails loudly.
#
# Run via ctest (dpack_thread_safety_compile) with:
#   cmake -DDPACK_SOURCE_DIR=<repo> -DDPACK_CXX_COMPILER=<c++> -P this_file.cmake

if(NOT DPACK_SOURCE_DIR OR NOT DPACK_CXX_COMPILER)
  message(FATAL_ERROR "need -DDPACK_SOURCE_DIR=<repo root> -DDPACK_CXX_COMPILER=<c++>")
endif()

set(FIXTURES ${DPACK_SOURCE_DIR}/tests/lint/fixtures)
set(BASE_FLAGS -std=c++20 -fsyntax-only -I${DPACK_SOURCE_DIR})
set(TSA_FLAGS -Wthread-safety -Werror=thread-safety)

# 1. Probe: does the compiler know -Wthread-safety at all?
execute_process(
  COMMAND ${DPACK_CXX_COMPILER} ${BASE_FLAGS} -Werror ${TSA_FLAGS}
          ${FIXTURES}/thread_safety_clean.cc
  RESULT_VARIABLE probe_rc
  ERROR_VARIABLE probe_err)
if(NOT probe_rc EQUAL 0 AND probe_err MATCHES "(unrecognized|unknown).*(option|argument)")
  # The "SKIP:" token is matched by the ctest SKIP_REGULAR_EXPRESSION property.
  message(STATUS "SKIP: ${DPACK_CXX_COMPILER} does not support -Wthread-safety "
                 "(the clang static-analysis CI job runs this gate)")
  return()
endif()

# 2. Positive control: the clean fixture must compile with the analysis enforced.
if(NOT probe_rc EQUAL 0)
  message(FATAL_ERROR
          "thread_safety_clean.cc must compile under -Werror=thread-safety; the wrappers "
          "or annotations are broken:\n${probe_err}")
endif()

# 3. The seeded violation must FAIL to compile.
execute_process(
  COMMAND ${DPACK_CXX_COMPILER} ${BASE_FLAGS} ${TSA_FLAGS}
          ${FIXTURES}/thread_safety_violation.cc
  RESULT_VARIABLE violation_rc
  ERROR_VARIABLE violation_err)
if(violation_rc EQUAL 0)
  message(FATAL_ERROR
          "thread_safety_violation.cc COMPILED under -Werror=thread-safety: the seeded "
          "GUARDED_BY violation was not rejected, so the annotation gate has rotted "
          "(macros expanding to nothing under clang, or the flag being dropped).")
endif()
if(NOT violation_err MATCHES "thread-safety")
  message(FATAL_ERROR
          "thread_safety_violation.cc failed for a reason other than thread-safety "
          "analysis — fixture bitrot, fix it:\n${violation_err}")
endif()

message(STATUS "thread-safety negative compile test passed: clean fixture compiles, "
               "seeded violation rejected")
