// SpscRing coverage: single-thread FIFO/full/empty semantics, cursor wraparound far past
// the capacity, epoch round-tripping (the stale-publication detection the async engine's
// quiesce is built on), and a producer/consumer torture loop that runs on the TSan CI leg —
// the ring's release-publish/acquire-consume edges are the only thing ordering the payload
// writes against the reads, so any missing fence is a reported race.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/spsc_ring.h"

namespace dpack {
namespace {

struct Frame {
  uint64_t a = 0;
  uint64_t b = 0;
};

TEST(SpscRingTest, FifoAndEmptyFullSemantics) {
  SpscRing<Frame, 4> ring;
  uint64_t epoch = 0;
  Frame out;
  EXPECT_FALSE(ring.TryPop(&epoch, &out));  // Empty.
  EXPECT_EQ(ring.size(), 0u);

  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(/*epoch=*/100 + i, Frame{i, i * i}));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.TryPush(/*epoch=*/999, Frame{}));  // Full: push refused, nothing lost.

  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(&epoch, &out));
    EXPECT_EQ(epoch, 100 + i);
    EXPECT_EQ(out.a, i);
    EXPECT_EQ(out.b, i * i);
  }
  EXPECT_FALSE(ring.TryPop(&epoch, &out));  // Drained.
}

TEST(SpscRingTest, WraparoundKeepsSlotsStraight) {
  // Cursors are monotone and never wrapped; the slot index is cursor & (capacity - 1).
  // Push/pop far past the capacity so every slot is reused many times.
  SpscRing<uint64_t, 4> ring;
  uint64_t epoch = 0;
  uint64_t value = 0;
  for (uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(ring.TryPush(i, i * 3));
    if (i % 3 == 0) {  // Occasionally let the ring fill up a little.
      continue;
    }
    while (ring.size() > 0) {
      uint64_t expected = i - (ring.size() - 1);
      ASSERT_TRUE(ring.TryPop(&epoch, &value));
      EXPECT_EQ(epoch, expected);
      EXPECT_EQ(value, expected * 3);
    }
  }
}

TEST(SpscRingTest, StaleEpochIsVisibleToTheConsumer) {
  // The async quiesce protocol: the driver pops until it sees a frame stamped with the
  // current dispatch epoch, counting older stamps as stale. The ring must hand back the
  // epochs exactly as pushed so that filter is exact.
  SpscRing<int, 4> ring;
  ASSERT_TRUE(ring.TryPush(/*epoch=*/7, 70));  // A stale leftover from cycle 7.
  ASSERT_TRUE(ring.TryPush(/*epoch=*/9, 90));  // The current cycle's frame.

  constexpr uint64_t kCurrent = 9;
  uint64_t epoch = 0;
  int value = 0;
  size_t stale = 0;
  bool delivered = false;
  while (ring.TryPop(&epoch, &value)) {
    if (epoch == kCurrent) {
      delivered = true;
      EXPECT_EQ(value, 90);
      break;
    }
    ++stale;
  }
  EXPECT_TRUE(delivered);
  EXPECT_EQ(stale, 1u);
}

TEST(SpscRingTest, ProducerConsumerTorture) {
  // One producer, one consumer, a deliberately tiny ring: both sides spin across the
  // full/empty boundaries thousands of times. The consumer checks strict FIFO of both
  // epoch and payload; TSan checks the publication edges.
  constexpr uint64_t kFrames = 50'000;
  SpscRing<Frame, 4> ring;

  std::thread producer([&] {
    for (uint64_t i = 0; i < kFrames; ++i) {
      Frame frame{i, ~i};
      while (!ring.TryPush(i, frame)) {
        std::this_thread::yield();
      }
    }
  });

  uint64_t received = 0;
  uint64_t epoch = 0;
  Frame out;
  while (received < kFrames) {
    if (!ring.TryPop(&epoch, &out)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(epoch, received);
    ASSERT_EQ(out.a, received);
    ASSERT_EQ(out.b, ~received);
    ++received;
  }
  producer.join();
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRingTest, CapacityIsCompileTimeAndPowerOfTwo) {
  static_assert(SpscRing<int, 4>::capacity() == 4);
  static_assert(SpscRing<int, 2>::capacity() == 2);
  static_assert(SpscRing<int, 64>::capacity() == 64);
  SUCCEED();
}

}  // namespace
}  // namespace dpack
