#include "src/common/distributions.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace dpack {
namespace {

TEST(DiscreteGaussianTest, ZeroStddevReturnsRoundedMean) {
  Rng rng(1);
  EXPECT_EQ(DiscreteGaussian(rng, 3.4, 0.0, 0, 10), 3);
  EXPECT_EQ(DiscreteGaussian(rng, 3.6, 0.0, 0, 10), 4);
}

TEST(DiscreteGaussianTest, ClampsToRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = DiscreteGaussian(rng, 5.0, 50.0, 1, 10);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 10);
  }
}

TEST(DiscreteGaussianTest, MeanApproximatelyCorrect) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(DiscreteGaussian(rng, 10.0, 2.0, -100, 100));
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(TruncatedDiscreteGaussianPmfTest, ZeroStddevIsPointMass) {
  std::vector<double> pmf = TruncatedDiscreteGaussianPmf(5, 2.0, 0.0);
  EXPECT_DOUBLE_EQ(pmf[2], 1.0);
  EXPECT_DOUBLE_EQ(pmf[0] + pmf[1] + pmf[3] + pmf[4], 0.0);
}

TEST(TruncatedDiscreteGaussianPmfTest, ZeroStddevClampsCenter) {
  std::vector<double> pmf = TruncatedDiscreteGaussianPmf(3, 10.0, 0.0);
  EXPECT_DOUBLE_EQ(pmf[2], 1.0);
}

TEST(TruncatedDiscreteGaussianPmfTest, SumsToOne) {
  std::vector<double> pmf = TruncatedDiscreteGaussianPmf(8, 3.0, 2.5);
  double total = 0.0;
  for (double p : pmf) {
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TruncatedDiscreteGaussianPmfTest, PeaksAtCenter) {
  std::vector<double> pmf = TruncatedDiscreteGaussianPmf(9, 4.0, 1.5);
  for (size_t i = 0; i < pmf.size(); ++i) {
    EXPECT_LE(pmf[i], pmf[4]);
  }
}

TEST(TruncatedDiscreteGaussianPmfTest, SymmetricAroundCenter) {
  std::vector<double> pmf = TruncatedDiscreteGaussianPmf(9, 4.0, 2.0);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(pmf[i], pmf[8 - i], 1e-12);
  }
}

TEST(TruncatedDiscreteGaussianIndexTest, LargeStddevCoversRange) {
  Rng rng(4);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    ++counts[TruncatedDiscreteGaussianIndex(rng, 4, 1.5, 100.0)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 500);  // Near-uniform under a huge stddev.
  }
}

TEST(PoissonProcessTest, ZeroRateNeverFires) {
  PoissonProcess process(Rng(5), 0.0);
  EXPECT_TRUE(std::isinf(process.InterArrival()));
}

TEST(PoissonProcessTest, MeanInterArrivalMatchesRate) {
  PoissonProcess process(Rng(6), 4.0);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += process.InterArrival();
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

}  // namespace
}  // namespace dpack
