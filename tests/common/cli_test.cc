// Checked CLI parsing: the examples' argv handling goes through TryParseUint64/TryParseSize
// (and the exiting ParseSizeArg/ParseUint64Arg wrappers). Pin the accept/reject boundary —
// the old bare-atoi parsing silently turned "abc" and "-3" into 0, which is exactly the bug
// class these helpers exist to kill.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "src/common/cli.h"

namespace dpack {
namespace {

TEST(CliTest, ParsesPlainDecimals) {
  EXPECT_EQ(TryParseUint64("0"), 0u);
  EXPECT_EQ(TryParseUint64("7"), 7u);
  EXPECT_EQ(TryParseUint64("10000"), 10000u);
  EXPECT_EQ(TryParseUint64("18446744073709551615"),
            std::numeric_limits<uint64_t>::max());
}

TEST(CliTest, RejectsNonNumbers) {
  EXPECT_FALSE(TryParseUint64("").has_value());
  EXPECT_FALSE(TryParseUint64("abc").has_value());
  EXPECT_FALSE(TryParseUint64("12x").has_value());  // atoi would say 12.
  EXPECT_FALSE(TryParseUint64("x12").has_value());
  EXPECT_FALSE(TryParseUint64("-3").has_value());  // atoi-to-size_t would wrap.
  EXPECT_FALSE(TryParseUint64("+3").has_value());
  EXPECT_FALSE(TryParseUint64(" 3").has_value());
  EXPECT_FALSE(TryParseUint64("3 ").has_value());
  EXPECT_FALSE(TryParseUint64("1.5").has_value());
}

TEST(CliTest, RejectsOverflow) {
  // UINT64_MAX + 1 and a digit string far past the range.
  EXPECT_FALSE(TryParseUint64("18446744073709551616").has_value());
  EXPECT_FALSE(TryParseUint64("99999999999999999999999").has_value());
}

TEST(CliTest, SizeParsingMatchesUint64OnThisPlatform) {
  EXPECT_EQ(TryParseSize("4096"), size_t{4096});
  EXPECT_FALSE(TryParseSize("nope").has_value());
  if constexpr (sizeof(size_t) < sizeof(uint64_t)) {
    EXPECT_FALSE(TryParseSize("18446744073709551615").has_value());
  } else {
    EXPECT_EQ(TryParseSize("18446744073709551615"),
              static_cast<size_t>(std::numeric_limits<uint64_t>::max()));
  }
}

TEST(CliTest, BadArgExitsNonzeroWithUsage) {
  // ParseSizeArg never returns on bad input: it prints the usage line to stderr and exits
  // with status 2 (the examples' conventional flag-error status).
  EXPECT_EXIT(ParseSizeArg("prog", "not-a-number", "num_tasks", "prog [num_tasks]"),
              testing::ExitedWithCode(2), "invalid num_tasks 'not-a-number'");
  EXPECT_EXIT(ParseUint64Arg("prog", "-1", "--seed", "prog [--seed N]"),
              testing::ExitedWithCode(2), "usage: prog \\[--seed N\\]");
}

TEST(CliTest, GoodArgReturnsTheValue) {
  EXPECT_EQ(ParseSizeArg("prog", "123", "num_tasks", "prog [num_tasks]"), 123u);
  EXPECT_EQ(ParseUint64Arg("prog", "9", "--seed", "prog [--seed N]"), 9u);
}

}  // namespace
}  // namespace dpack
