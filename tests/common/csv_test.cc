#include "src/common/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace dpack {
namespace {

TEST(CsvTableTest, WritesCsvWithHeader) {
  CsvTable table({"a", "b"});
  table.NewRow().Add(std::string("x")).Add(int64_t{2});
  table.NewRow().Add(1.5).Add(size_t{7});
  std::ostringstream os;
  table.WriteCsv(os);
  EXPECT_EQ(os.str(), "a,b\nx,2\n1.5,7\n");
}

TEST(CsvTableTest, AlignedOutputHasAllCells) {
  CsvTable table({"name", "value"});
  table.NewRow().Add(std::string("alpha")).Add(3.25);
  std::ostringstream os;
  table.WriteAligned(os);
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("3.25"), std::string::npos);
}

TEST(CsvTableTest, RowCountTracksRows) {
  CsvTable table({"x"});
  EXPECT_EQ(table.row_count(), 0u);
  table.NewRow().Add(1.0);
  table.NewRow().Add(2.0);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(CsvTableTest, SaveCsvRoundTrips) {
  CsvTable table({"k", "v"});
  table.NewRow().Add(std::string("key")).Add(int64_t{42});
  std::string path = testing::TempDir() + "/dpack_csv_test.csv";
  ASSERT_TRUE(table.SaveCsv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::getline(in, line);
  EXPECT_EQ(line, "key,42");
  std::remove(path.c_str());
}

TEST(FormatDoubleTest, CompactFormats) {
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(1234567.0), "1.23457e+06");
}

}  // namespace
}  // namespace dpack
