#include "src/common/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace dpack {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkIsIndependentOfDrawPosition) {
  Rng a(7);
  Rng b(7);
  a.Uniform();  // Advance a only.
  Rng fork_a = a.Fork(3);
  Rng fork_b = b.Fork(3);
  EXPECT_DOUBLE_EQ(fork_a.Uniform(), fork_b.Uniform());
}

TEST(RngTest, ForkStreamsDiffer) {
  Rng base(9);
  Rng s1 = base.Fork(1);
  Rng s2 = base.Fork(2);
  EXPECT_NE(s1.Uniform(), s2.Uniform());
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(6);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, GaussianZeroStddevIsDeterministic) {
  Rng rng(6);
  EXPECT_DOUBLE_EQ(rng.Gaussian(1.5, 0.0), 1.5);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, PoissonMeanApproximatelyCorrect) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(4.0));
  }
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(10);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, WeightedIndexRespectsZeroWeights) {
  Rng rng(11);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(12);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.WeightedIndex(weights) == 1) {
      ++count1;
    }
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.01);
}

TEST(RngTest, SampleWithoutReplacementDistinctSorted) {
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (size_t s : sample) {
      EXPECT_LT(s, 20u);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(14);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  ASSERT_EQ(sample.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sample[i], i);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

}  // namespace
}  // namespace dpack
