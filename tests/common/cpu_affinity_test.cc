// cpu_affinity coverage: the allowed-core enumeration is cpuset-aware and non-empty, core
// picking is deterministic and wraps modularly, pinning a thread to an allowed core
// succeeds (from a scratch thread, so the test binary's main thread keeps its mask), and —
// the contract the async engine leans on — a denied pin is a counted no-op, not an error:
// with SetPinFailForTesting armed the engine runs unpinned, grants stay byte-identical to
// the recompute reference, and stats().pin_failures counts one failure per shard thread.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/block/block_manager.h"
#include "src/common/cpu_affinity.h"
#include "src/core/scheduler.h"
#include "src/workload/curve_pool.h"

namespace dpack {
namespace {

// Disarms the test-only pin denial on scope exit so a failing ASSERT cannot leak the
// armed state into later tests in this binary.
struct ScopedPinDenial {
  ScopedPinDenial() { SetPinFailForTesting(true); }
  ~ScopedPinDenial() { SetPinFailForTesting(false); }
};

TEST(CpuAffinityTest, AllowedCoresIsNonEmptyOnLinux) {
#if defined(__linux__)
  std::vector<int> cores = AllowedCores();
  ASSERT_FALSE(cores.empty());
  for (int core : cores) {
    EXPECT_GE(core, 0);
  }
#else
  GTEST_SKIP() << "affinity is Linux-only; the stubs return empty";
#endif
}

TEST(CpuAffinityTest, PickShardCoreIsDeterministicAndWraps) {
  std::vector<int> cores = AllowedCores();
  if (cores.empty()) {
    EXPECT_EQ(PickShardCore(0), -1);
    return;
  }
  for (size_t s = 0; s < 3 * cores.size(); ++s) {
    EXPECT_EQ(PickShardCore(s), cores[s % cores.size()]) << "shard " << s;
    EXPECT_EQ(PickShardCore(s), PickShardCore(s)) << "shard " << s;
  }
}

TEST(CpuAffinityTest, PinningAnAllowedCoreSucceedsFromAScratchThread) {
  int core = PickShardCore(0);
  if (core < 0) {
    GTEST_SKIP() << "no allowed cores reported";
  }
  bool pinned = false;
  std::thread t([&] { pinned = PinCurrentThreadToCore(core); });
  t.join();
  EXPECT_TRUE(pinned);
}

TEST(CpuAffinityTest, NegativeCoreIsRefused) {
  EXPECT_FALSE(PinCurrentThreadToCore(-1));
}

TEST(CpuAffinityTest, ArmedDenialMakesPinningFail) {
  ScopedPinDenial deny;
  int core = PickShardCore(0);
  bool pinned = true;
  std::thread t([&] { pinned = PinCurrentThreadToCore(core); });
  t.join();
  EXPECT_FALSE(pinned);
}

TEST(CpuAffinityTest, EngineFallsBackUnpinnedWithCountedFailures) {
  // The CI-container scenario: every pin attempt is denied. The async engine must come up
  // unpinned, schedule exactly as the recompute reference, and report one pin failure per
  // shard thread — never crash, never silently succeed.
  ScopedPinDenial deny;
  constexpr size_t kShards = 3;

  AlphaGridPtr grid = AlphaGrid::Default();
  GreedyScheduler async_scheduler(
      GreedyMetric::kDpack, GreedySchedulerOptions{.eta = 0.05,
                                                   .incremental = true,
                                                   .num_shards = kShards,
                                                   .async = true,
                                                   .pin_threads = true});
  GreedyScheduler recompute(GreedyMetric::kDpack,
                            GreedySchedulerOptions{.eta = 0.05, .incremental = false});

  BlockManager async_blocks(grid, /*eps_g=*/10.0, /*delta_g=*/1e-7);
  BlockManager rec_blocks(grid, /*eps_g=*/10.0, /*delta_g=*/1e-7);
  for (int b = 0; b < 6; ++b) {
    async_blocks.AddBlock(0.0, /*unlocked=*/true);
    rec_blocks.AddBlock(0.0, /*unlocked=*/true);
  }

  RdpCurve capacity = BlockCapacityCurve(grid, 10.0, 1e-7);
  std::vector<Task> pending;
  for (TaskId id = 0; id < 12; ++id) {
    Task task(id, /*weight=*/1.0 + 0.25 * static_cast<double>(id % 4),
              capacity.Scaled(0.05 + 0.01 * static_cast<double>(id % 5)));
    task.arrival_time = 0.0;
    task.blocks = {static_cast<BlockId>(id % 6), static_cast<BlockId>((id + 2) % 6)};
    pending.push_back(std::move(task));
  }

  std::vector<size_t> granted = async_scheduler.ScheduleBatch(pending, async_blocks);
  std::vector<size_t> reference = recompute.ScheduleBatch(pending, rec_blocks);
  EXPECT_EQ(granted, reference);

  ASSERT_NE(async_scheduler.engine(), nullptr);
  const ScheduleContextStats& stats = async_scheduler.engine()->stats();
  EXPECT_EQ(stats.pin_failures, kShards);
  EXPECT_EQ(stats.async_stale_publishes, 0u);
}

}  // namespace
}  // namespace dpack
