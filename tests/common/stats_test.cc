#include "src/common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dpack {
namespace {

TEST(RunningStatTest, EmptyDefaults) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat stat;
  stat.Add(5.0);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.min(), 5.0);
  EXPECT_DOUBLE_EQ(stat.max(), 5.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stat.Add(x);
  }
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStatTest, VariationCoefficient) {
  RunningStat stat;
  stat.Add(1.0);
  stat.Add(3.0);
  // mean 2, sample stddev sqrt(2).
  EXPECT_NEAR(stat.variation_coefficient(), std::sqrt(2.0) / 2.0, 1e-12);
}

TEST(SampleSetTest, QuantilesInterpolate) {
  SampleSet set;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    set.Add(x);
  }
  EXPECT_DOUBLE_EQ(set.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(set.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(set.median(), 2.5);
}

TEST(SampleSetTest, CdfAt) {
  SampleSet set;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    set.Add(x);
  }
  EXPECT_DOUBLE_EQ(set.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(set.CdfAt(2.0), 0.5);
  EXPECT_DOUBLE_EQ(set.CdfAt(10.0), 1.0);
}

TEST(SampleSetTest, CdfPointsMonotone) {
  SampleSet set;
  for (int i = 100; i > 0; --i) {
    set.Add(static_cast<double>(i));
  }
  auto points = set.CdfPoints(10);
  ASSERT_FALSE(points.empty());
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(SampleSetTest, AddAfterQueryResorts) {
  SampleSet set;
  set.Add(3.0);
  EXPECT_DOUBLE_EQ(set.median(), 3.0);
  set.Add(1.0);
  set.Add(2.0);
  EXPECT_DOUBLE_EQ(set.median(), 2.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(-1.0);
  hist.Add(0.0);
  hist.Add(1.9);
  hist.Add(5.0);
  hist.Add(10.0);
  hist.Add(100.0);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 2u);
  EXPECT_EQ(hist.bucket(0), 2u);  // 0.0 and 1.9.
  EXPECT_EQ(hist.bucket(2), 1u);  // 5.0.
  EXPECT_EQ(hist.total(), 6u);
  EXPECT_DOUBLE_EQ(hist.BucketLow(2), 4.0);
}

}  // namespace
}  // namespace dpack
