// WorkerPool coverage: fork-join correctness across reuse, shutdown timing, and the
// exception-propagation contract (an item that throws never blocks the drain; the first
// captured exception is rethrown to the caller once every item finished).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/worker_pool.h"

namespace dpack {
namespace {

TEST(WorkerPoolTest, RunsEveryItemExactlyOnce) {
  WorkerPool pool(3);
  constexpr size_t kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.ParallelFor(kItems, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(WorkerPoolTest, ZeroWorkersRunsInline) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  std::atomic<size_t> count{0};
  pool.ParallelFor(64, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64u);
}

TEST(WorkerPoolTest, EmptyRangeIsANoOp) {
  WorkerPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(WorkerPoolTest, ShutdownWithNoWork) {
  // Destruction races the workers' startup: they may still be entering their wait when
  // stop is signalled.
  for (int i = 0; i < 20; ++i) {
    WorkerPool pool(4);
  }
}

TEST(WorkerPoolTest, ShutdownWhileWorkersStillParking) {
  // Destroy immediately after a join: workers that claimed nothing may still be between
  // their empty claim loop and their generation wait when the destructor runs.
  for (int i = 0; i < 20; ++i) {
    WorkerPool pool(4);
    std::atomic<size_t> count{0};
    // Fewer items than threads: some workers never claim anything.
    pool.ParallelFor(2, [&](size_t) {
      count.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    });
    EXPECT_EQ(count.load(), 2u);
  }
}

TEST(WorkerPoolTest, ExceptionInTaskPropagatesAfterDrain) {
  WorkerPool pool(3);
  constexpr size_t kItems = 100;
  std::vector<std::atomic<int>> hits(kItems);
  EXPECT_THROW(
      pool.ParallelFor(kItems,
                       [&](size_t i) {
                         hits[i].fetch_add(1);
                         if (i == 37) {
                           throw std::runtime_error("item 37 failed");
                         }
                       }),
      std::runtime_error);
  // A failed item never blocks the drain: every item still ran exactly once.
  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(WorkerPoolTest, ExceptionInInlinePathPropagatesAfterDrain) {
  WorkerPool pool(0);
  std::atomic<size_t> count{0};
  EXPECT_THROW(pool.ParallelFor(8,
                                [&](size_t i) {
                                  count.fetch_add(1);
                                  if (i == 3) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  EXPECT_EQ(count.load(), 8u);
}

TEST(WorkerPoolTest, ReuseAfterDrain) {
  // The pool must start every generation with a clean slate, including after an exception.
  WorkerPool pool(2);
  std::atomic<size_t> count{0};
  EXPECT_THROW(pool.ParallelFor(10,
                                [&](size_t i) {
                                  if (i == 0) {
                                    throw std::runtime_error("first generation fails");
                                  }
                                  count.fetch_add(1);
                                }),
               std::runtime_error);
  for (size_t round = 1; round <= 50; ++round) {
    count.store(0);
    pool.ParallelFor(round, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), round);
  }
}

TEST(WorkerPoolTest, MultipleExceptionsOnlyOneRethrown) {
  WorkerPool pool(4);
  std::atomic<size_t> count{0};
  try {
    pool.ParallelFor(64, [&](size_t i) {
      count.fetch_add(1);
      throw std::runtime_error("item " + std::to_string(i));
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(count.load(), 64u);
  // And the pool is still healthy.
  count.store(0);
  pool.ParallelFor(16, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16u);
}

}  // namespace
}  // namespace dpack
