#include "src/orchestrator/cluster_orchestrator.h"

#include <gtest/gtest.h>

#include "src/rdp/rdp_curve.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

Task FractionTask(TaskId id, double fraction, size_t recent, double arrival) {
  RdpCurve capacity = BlockCapacityCurve(Grid(), 10.0, 1e-7);
  Task t(id, 1.0, capacity.Scaled(fraction));
  t.num_recent_blocks = recent;
  t.arrival_time = arrival;
  return t;
}

OrchestratorConfig FastConfig() {
  OrchestratorConfig config;
  config.offline_blocks = 2;
  config.online_blocks = 3;
  config.period = 1.0;
  config.unlock_steps = 2;
  config.virtual_unit_wall_ms = 2.0;
  config.store_latency_us = 10.0;
  return config;
}

TEST(OrchestratorOfflineTest, SchedulesAndTimesThePass) {
  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpack), FastConfig());
  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back(FractionTask(i, 0.05, 2, 0.0));
  }
  OrchestratorRunResult result = orchestrator.RunOfflinePass(std::move(tasks));
  EXPECT_EQ(result.metrics.submitted(), 20u);
  EXPECT_EQ(result.metrics.allocated(), 20u);
  EXPECT_GT(result.metrics.total_runtime_seconds(), 0.0);
  // Claim creation (20) + cycle ops (4) + per-grant ops (3 x 20).
  EXPECT_EQ(result.store_operations, 20u + 4u + 60u);
}

TEST(OrchestratorOfflineTest, StoreLatencyDominatesRuntime) {
  // The Q4 observation: with a slow store, the pass runtime is mostly store traffic.
  OrchestratorConfig config = FastConfig();
  config.store_latency_us = 2000.0;  // 2 ms per op.
  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpack), config);
  std::vector<Task> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back(FractionTask(i, 0.01, 1, 0.0));
  }
  OrchestratorRunResult result = orchestrator.RunOfflinePass(std::move(tasks));
  // Timed region: 4 cycle ops + 30 grant ops = 68 ms of injected latency minimum.
  EXPECT_GE(result.metrics.total_runtime_seconds(), 0.06);
}

TEST(OrchestratorOfflineTest, SecondRunReusesRestoredScheduler) {
  // Regression: Run* moved the scheduler into the run's online driver and never took it
  // back, so a second run on the same orchestrator dereferenced a moved-from (null)
  // scheduler. The scheduler is now restored (with its engine caches invalidated) after
  // every run.
  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpack), FastConfig());
  for (int run = 0; run < 2; ++run) {
    std::vector<Task> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.push_back(FractionTask(run * 100 + i, 0.05, 2, 0.0));
    }
    OrchestratorRunResult result = orchestrator.RunOfflinePass(std::move(tasks));
    EXPECT_EQ(result.metrics.submitted(), 10u) << "run " << run;
    EXPECT_EQ(result.metrics.allocated(), 10u) << "run " << run;
    // Engine counters are per run, not lifetime: the restored scheduler's engine keeps its
    // monotonic totals, but each result reports only its own run's single pass.
    EXPECT_EQ(result.scheduler_stats.cycles, 1u) << "run " << run;
  }
}

TEST(OrchestratorOnlineTest, OnlineThenOfflineReusesRestoredScheduler) {
  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpf), FastConfig());
  std::vector<Task> online_tasks;
  for (int i = 0; i < 8; ++i) {
    online_tasks.push_back(FractionTask(i, 0.02, 1, 0.0));
  }
  OrchestratorRunResult online = orchestrator.RunOnline(std::move(online_tasks));
  EXPECT_EQ(online.metrics.submitted(), 8u);

  std::vector<Task> offline_tasks;
  for (int i = 0; i < 8; ++i) {
    offline_tasks.push_back(FractionTask(100 + i, 0.02, 1, 0.0));
  }
  OrchestratorRunResult offline = orchestrator.RunOfflinePass(std::move(offline_tasks));
  EXPECT_EQ(offline.metrics.submitted(), 8u);
  EXPECT_EQ(offline.metrics.allocated(), 8u);
}

TEST(OrchestratorOnlineTest, ProcessesWorkloadEndToEnd) {
  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpack), FastConfig());
  std::vector<Task> tasks;
  for (int i = 0; i < 30; ++i) {
    tasks.push_back(FractionTask(i, 0.02, 2, static_cast<double>(i % 3)));
  }
  OrchestratorRunResult result = orchestrator.RunOnline(std::move(tasks));
  EXPECT_EQ(result.metrics.submitted(), 30u);
  EXPECT_EQ(result.metrics.allocated(), 30u);  // Ample budget.
  EXPECT_GT(result.cycles, 0u);
  EXPECT_GT(result.store_operations, 30u);
}

TEST(OrchestratorOnlineTest, DelaysRecordedInVirtualTime) {
  OrchestratorConfig config = FastConfig();
  config.unlock_steps = 3;
  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpack), config);
  // One task needing the full budget of one block: must wait ~2 periods for unlock.
  std::vector<Task> tasks = {FractionTask(0, 0.95, 1, 0.0)};
  OrchestratorRunResult result = orchestrator.RunOnline(std::move(tasks));
  ASSERT_EQ(result.metrics.allocated(), 1u);
  EXPECT_GE(result.metrics.delays().Quantile(0.5), 1.0);
}

TEST(OrchestratorOnlineTest, EmptyTaskVectorShutsDownCleanly) {
  // Shutdown-path coverage: with nothing to submit the producer finishes immediately and
  // the run must still advance the clock, release online blocks, cycle the scheduler, and
  // join the timekeeper without hanging.
  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpack), FastConfig());
  OrchestratorRunResult result = orchestrator.RunOnline({});
  EXPECT_EQ(result.metrics.submitted(), 0u);
  EXPECT_EQ(result.metrics.allocated(), 0u);
  EXPECT_GT(result.cycles, 0u);
  EXPECT_GT(result.store_operations, 0u);  // Per-cycle traffic only.
}

TEST(OrchestratorOnlineTest, ZeroOnlineBlocksRunsOnOfflineBlocksOnly) {
  // Shutdown-path coverage: with no online block arrivals the timekeeper's release counter
  // stays pinned at zero and the horizon is driven by task arrivals and unlocking alone.
  OrchestratorConfig config = FastConfig();
  config.online_blocks = 0;
  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpack), config);
  std::vector<Task> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(FractionTask(i, 0.02, 2, static_cast<double>(i % 2)));
  }
  OrchestratorRunResult result = orchestrator.RunOnline(std::move(tasks));
  EXPECT_EQ(result.metrics.submitted(), 6u);
  EXPECT_EQ(result.metrics.allocated(), 6u);  // Ample budget on the offline blocks.
}

TEST(OrchestratorOnlineTest, ShardedSchedulerMatchesMonolithic) {
  // The num_shards/async knobs flow through the orchestrator into the scheduler's engine,
  // and the sharded and async engines allocate exactly what the single-shard engine does.
  auto run = [](size_t num_shards, bool async) {
    OrchestratorConfig config = FastConfig();
    config.num_shards = num_shards;
    config.async = async;
    std::vector<Task> tasks;
    for (int i = 0; i < 20; ++i) {
      tasks.push_back(FractionTask(i, 0.03, 2, static_cast<double>(i % 3)));
    }
    ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpack), config);
    return orchestrator.RunOnline(std::move(tasks));
  };
  OrchestratorRunResult mono = run(0, false);
  OrchestratorRunResult sharded = run(3, false);
  OrchestratorRunResult async = run(3, true);
  EXPECT_EQ(sharded.metrics.allocated(), mono.metrics.allocated());
  EXPECT_EQ(sharded.metrics.allocated_weight(), mono.metrics.allocated_weight());
  EXPECT_EQ(sharded.scheduler_stats.shards, 3u);
  EXPECT_EQ(mono.scheduler_stats.shards, 1u);
  EXPECT_EQ(async.metrics.allocated(), mono.metrics.allocated());
  EXPECT_EQ(async.metrics.allocated_weight(), mono.metrics.allocated_weight());
  EXPECT_EQ(async.scheduler_stats.shards, 3u);
  // Run-scoped deltas stay clean: the async run never tripped quiesce or fell back.
  EXPECT_EQ(async.scheduler_stats.async_stale_publishes, 0u);
  EXPECT_EQ(async.scheduler_stats.full_recomputes, 0u);
}

TEST(OrchestratorOnlineTest, DpackAllocatesAtLeastAsMuchAsDpfUnderContention) {
  auto run = [](SchedulerKind kind) {
    OrchestratorConfig config = FastConfig();
    config.offline_blocks = 3;
    config.online_blocks = 2;
    std::vector<Task> tasks;
    // Heterogeneous contention: multi-block vs single-block tasks (Fig. 1 style).
    RdpCurve capacity = BlockCapacityCurve(Grid(), 10.0, 1e-7);
    for (int i = 0; i < 12; ++i) {
      if (i % 4 == 0) {
        Task t(i, 1.0, capacity.Scaled(0.45));
        t.num_recent_blocks = 3;
        t.arrival_time = 0.0;
        tasks.push_back(t);
      } else {
        Task t(i, 1.0, capacity.Scaled(0.55));
        t.num_recent_blocks = 1;
        t.arrival_time = 0.0;
        tasks.push_back(t);
      }
    }
    ClusterOrchestrator orch(CreateScheduler(kind), config);
    return orch.RunOnline(std::move(tasks)).metrics.allocated();
  };
  EXPECT_GE(run(SchedulerKind::kDpack), run(SchedulerKind::kDpf));
}

}  // namespace
}  // namespace dpack
