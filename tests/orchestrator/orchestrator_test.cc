#include "src/orchestrator/cluster_orchestrator.h"

#include <gtest/gtest.h>

#include "src/rdp/rdp_curve.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

Task FractionTask(TaskId id, double fraction, size_t recent, double arrival) {
  RdpCurve capacity = BlockCapacityCurve(Grid(), 10.0, 1e-7);
  Task t(id, 1.0, capacity.Scaled(fraction));
  t.num_recent_blocks = recent;
  t.arrival_time = arrival;
  return t;
}

OrchestratorConfig FastConfig() {
  OrchestratorConfig config;
  config.offline_blocks = 2;
  config.online_blocks = 3;
  config.period = 1.0;
  config.unlock_steps = 2;
  config.virtual_unit_wall_ms = 2.0;
  config.store_latency_us = 10.0;
  return config;
}

TEST(OrchestratorOfflineTest, SchedulesAndTimesThePass) {
  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpack), FastConfig());
  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back(FractionTask(i, 0.05, 2, 0.0));
  }
  OrchestratorRunResult result = orchestrator.RunOfflinePass(std::move(tasks));
  EXPECT_EQ(result.metrics.submitted(), 20u);
  EXPECT_EQ(result.metrics.allocated(), 20u);
  EXPECT_GT(result.metrics.total_runtime_seconds(), 0.0);
  // Claim creation (20) + cycle ops (4) + per-grant ops (3 x 20).
  EXPECT_EQ(result.store_operations, 20u + 4u + 60u);
}

TEST(OrchestratorOfflineTest, StoreLatencyDominatesRuntime) {
  // The Q4 observation: with a slow store, the pass runtime is mostly store traffic.
  OrchestratorConfig config = FastConfig();
  config.store_latency_us = 2000.0;  // 2 ms per op.
  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpack), config);
  std::vector<Task> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back(FractionTask(i, 0.01, 1, 0.0));
  }
  OrchestratorRunResult result = orchestrator.RunOfflinePass(std::move(tasks));
  // Timed region: 4 cycle ops + 30 grant ops = 68 ms of injected latency minimum.
  EXPECT_GE(result.metrics.total_runtime_seconds(), 0.06);
}

TEST(OrchestratorOnlineTest, ProcessesWorkloadEndToEnd) {
  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpack), FastConfig());
  std::vector<Task> tasks;
  for (int i = 0; i < 30; ++i) {
    tasks.push_back(FractionTask(i, 0.02, 2, static_cast<double>(i % 3)));
  }
  OrchestratorRunResult result = orchestrator.RunOnline(std::move(tasks));
  EXPECT_EQ(result.metrics.submitted(), 30u);
  EXPECT_EQ(result.metrics.allocated(), 30u);  // Ample budget.
  EXPECT_GT(result.cycles, 0u);
  EXPECT_GT(result.store_operations, 30u);
}

TEST(OrchestratorOnlineTest, DelaysRecordedInVirtualTime) {
  OrchestratorConfig config = FastConfig();
  config.unlock_steps = 3;
  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpack), config);
  // One task needing the full budget of one block: must wait ~2 periods for unlock.
  std::vector<Task> tasks = {FractionTask(0, 0.95, 1, 0.0)};
  OrchestratorRunResult result = orchestrator.RunOnline(std::move(tasks));
  ASSERT_EQ(result.metrics.allocated(), 1u);
  EXPECT_GE(result.metrics.delays().Quantile(0.5), 1.0);
}

TEST(OrchestratorOnlineTest, DpackAllocatesAtLeastAsMuchAsDpfUnderContention) {
  auto run = [](SchedulerKind kind) {
    OrchestratorConfig config = FastConfig();
    config.offline_blocks = 3;
    config.online_blocks = 2;
    std::vector<Task> tasks;
    // Heterogeneous contention: multi-block vs single-block tasks (Fig. 1 style).
    RdpCurve capacity = BlockCapacityCurve(Grid(), 10.0, 1e-7);
    for (int i = 0; i < 12; ++i) {
      if (i % 4 == 0) {
        Task t(i, 1.0, capacity.Scaled(0.45));
        t.num_recent_blocks = 3;
        t.arrival_time = 0.0;
        tasks.push_back(t);
      } else {
        Task t(i, 1.0, capacity.Scaled(0.55));
        t.num_recent_blocks = 1;
        t.arrival_time = 0.0;
        tasks.push_back(t);
      }
    }
    ClusterOrchestrator orch(CreateScheduler(kind), config);
    return orch.RunOnline(std::move(tasks)).metrics.allocated();
  };
  EXPECT_GE(run(SchedulerKind::kDpack), run(SchedulerKind::kDpf));
}

}  // namespace
}  // namespace dpack
