#include "src/orchestrator/state_store.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dpack {
namespace {

TEST(StateStoreTest, CountsOperations) {
  SimulatedStateStore store(0.0);
  EXPECT_EQ(store.operations(), 0u);
  store.RoundTrip();
  store.RoundTrip(5);
  EXPECT_EQ(store.operations(), 6u);
}

TEST(StateStoreTest, ZeroLatencyIsFast) {
  SimulatedStateStore store(0.0);
  auto start = std::chrono::steady_clock::now();
  store.RoundTrip(100000);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(seconds, 0.5);
}

TEST(StateStoreTest, LatencyIsInjected) {
  SimulatedStateStore store(/*latency_us=*/2000.0);
  auto start = std::chrono::steady_clock::now();
  store.RoundTrip(10);  // 20 ms total.
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GE(seconds, 0.018);
}

TEST(StateStoreTest, ThreadSafeCounting) {
  SimulatedStateStore store(0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < 10000; ++i) {
        store.RoundTrip();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(store.operations(), 40000u);
}

TEST(StateStoreTest, ZeroOpsNoCount) {
  SimulatedStateStore store(1000.0);
  store.RoundTrip(0);
  EXPECT_EQ(store.operations(), 0u);
}

TEST(StateStoreTest, PutGetRoundTripsBytes) {
  SimulatedStateStore store(0.0);
  EXPECT_FALSE(store.Get("missing").has_value());  // Charged one read trip.
  store.Put("checkpoint", "snapshot-bytes");
  std::optional<std::string> value = store.Get("checkpoint");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "snapshot-bytes");
  store.Put("checkpoint", "newer");  // Overwrite.
  EXPECT_EQ(*store.Get("checkpoint"), "newer");
  EXPECT_EQ(store.bytes_written(), std::string("snapshot-bytes").size() + 5);
}

TEST(StateStoreTest, PutChargesOneTripPerChunk) {
  SimulatedStateStore store(0.0);
  store.Put("small", "x");  // 1 trip.
  EXPECT_EQ(store.operations(), 1u);
  store.Put("empty", "");  // Still 1 trip (the write itself).
  EXPECT_EQ(store.operations(), 2u);
  std::string large(SimulatedStateStore::kPutChunkBytes * 2 + 1, 'a');  // 3 chunks.
  store.Put("large", std::move(large));
  EXPECT_EQ(store.operations(), 5u);
}

TEST(StateStoreTest, ConcurrentPutGetAndRoundTrips) {
  // The orchestrator's producer thread issues claim round trips while the scheduler thread
  // persists checkpoints; the store must tolerate that concurrency.
  SimulatedStateStore store(0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 2000; ++i) {
        store.Put("key" + std::to_string(t), std::string(16, 'v'));
        store.Get("key" + std::to_string(1 - t));
        store.RoundTrip();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(store.operations(), 2u * 2000u * 3u);
  EXPECT_EQ(store.bytes_written(), 2u * 2000u * 16u);
}

}  // namespace
}  // namespace dpack
