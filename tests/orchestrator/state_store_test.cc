#include "src/orchestrator/state_store.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dpack {
namespace {

TEST(StateStoreTest, CountsOperations) {
  SimulatedStateStore store(0.0);
  EXPECT_EQ(store.operations(), 0u);
  store.RoundTrip();
  store.RoundTrip(5);
  EXPECT_EQ(store.operations(), 6u);
}

TEST(StateStoreTest, ZeroLatencyIsFast) {
  SimulatedStateStore store(0.0);
  auto start = std::chrono::steady_clock::now();
  store.RoundTrip(100000);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(seconds, 0.5);
}

TEST(StateStoreTest, LatencyIsInjected) {
  SimulatedStateStore store(/*latency_us=*/2000.0);
  auto start = std::chrono::steady_clock::now();
  store.RoundTrip(10);  // 20 ms total.
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GE(seconds, 0.018);
}

TEST(StateStoreTest, ThreadSafeCounting) {
  SimulatedStateStore store(0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < 10000; ++i) {
        store.RoundTrip();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(store.operations(), 40000u);
}

TEST(StateStoreTest, ZeroOpsNoCount) {
  SimulatedStateStore store(1000.0);
  store.RoundTrip(0);
  EXPECT_EQ(store.operations(), 0u);
}

}  // namespace
}  // namespace dpack
