// Property tests for the snapshot codec (ISSUE 4): randomized cluster states round-trip
// through both wire encodings bit-exactly, and corrupted inputs — truncations, single-bit
// flips, wrong versions, edited fields, inconsistent structures — are rejected with a
// diagnostic, never a crash (the ASan/UBSan CI leg runs this suite) and never a
// silently-wrong budget (both encodings carry a checksum over the canonical payload).

#include "src/orchestrator/checkpoint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "src/block/block_manager.h"
#include "src/common/rng.h"
#include "src/core/metrics.h"
#include "src/rdp/rdp_curve.h"

namespace dpack {
namespace {

constexpr double kEpsG = 10.0;
constexpr double kDeltaG = 1e-7;

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

// Builds a randomized but internally consistent cluster state — blocks with committed
// budget and partial unlocks, a pending queue, metrics that balance against it — and
// captures it, exercising CaptureSnapshot itself along the way.
ClusterSnapshot RandomSnapshot(uint64_t seed, size_t num_blocks, size_t num_pending,
                               size_t num_shards = 3) {
  Rng rng(seed);
  BlockManager blocks(Grid(), kEpsG, kDeltaG);
  RdpCurve capacity = BlockCapacityCurve(Grid(), kEpsG, kDeltaG);
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks.AddBlock(static_cast<double>(b) * 0.5, /*unlocked=*/rng.Bernoulli(0.5));
  }
  blocks.UpdateUnlocks(/*now=*/static_cast<double>(num_blocks), /*period=*/1.0,
                       /*unlock_steps=*/rng.UniformInt(1, 8));
  // Commit random accepted demands so consumed curves and versions are non-trivial.
  for (size_t b = 0; b < num_blocks; ++b) {
    PrivacyBlock& block = blocks.block(static_cast<BlockId>(b));
    for (int attempt = 0; attempt < 3; ++attempt) {
      RdpCurve demand = capacity.Scaled(rng.Uniform(0.01, 0.4));
      if (block.CanAccept(demand)) {
        block.Commit(demand);
      }
    }
  }

  AllocationMetrics metrics;
  std::vector<Task> pending;
  size_t allocated = static_cast<size_t>(rng.UniformInt(0, 5));
  size_t evicted = static_cast<size_t>(rng.UniformInt(0, 3));
  double checkpoint_time = 100.0;
  for (size_t i = 0; i < num_pending + allocated + evicted; ++i) {
    double weight = rng.Uniform(0.5, 4.0);
    bool fair = rng.Bernoulli(0.3);
    metrics.RecordSubmission(weight, fair);
    if (i < allocated) {
      metrics.RecordAllocation(weight, rng.Uniform(0.0, 20.0), fair);
    } else if (i < allocated + evicted) {
      metrics.RecordEviction(weight);
    } else {
      Task task(static_cast<TaskId>(1000 + i), weight, capacity.Scaled(rng.Uniform(0.01, 0.6)));
      task.arrival_time = rng.Uniform(0.0, checkpoint_time);
      task.timeout = rng.Bernoulli(0.5) ? std::numeric_limits<double>::infinity()
                                        : rng.Uniform(1.0, 50.0);
      if (num_blocks > 0 && rng.Bernoulli(0.8)) {
        size_t count = static_cast<size_t>(
            rng.UniformInt(1, static_cast<int64_t>(std::min<size_t>(3, num_blocks))));
        for (size_t idx : rng.SampleWithoutReplacement(num_blocks, count)) {
          task.blocks.push_back(static_cast<BlockId>(idx));
        }
      } else {
        task.num_recent_blocks = static_cast<size_t>(rng.UniformInt(1, 4));
      }
      pending.push_back(std::move(task));
    }
  }
  for (int c = 0; c < 4; ++c) {
    metrics.RecordCycleRuntime(rng.Uniform(1e-5, 1e-2));
  }

  SnapshotMeta meta;
  meta.cycles_completed = static_cast<uint64_t>(rng.UniformInt(1, 200));
  meta.checkpoint_time = checkpoint_time;
  meta.next_cycle_time = checkpoint_time + rng.Uniform(0.0, 5.0);
  meta.period = rng.Uniform(0.5, 5.0);
  meta.unlock_steps = rng.UniformInt(1, 50);
  meta.fair_share_n = rng.UniformInt(1, 50);
  meta.num_shards = num_shards;
  meta.async = rng.Bernoulli(0.5);
  return CaptureSnapshot(blocks, pending, metrics, meta);
}

TEST(CheckpointCodecTest, BinaryRoundTripIsByteIdentical) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    ClusterSnapshot snapshot = RandomSnapshot(seed, 1 + seed % 7, seed % 9);
    ASSERT_EQ(ValidateSnapshot(snapshot), "") << "seed=" << seed;
    std::string encoded = EncodeSnapshotBinary(snapshot);
    SnapshotParseResult parsed = DecodeSnapshotBinary(encoded);
    ASSERT_TRUE(parsed.ok) << "seed=" << seed << ": " << parsed.error;
    // Re-encoding the parsed snapshot reproduces the exact bytes: nothing was lost or
    // renormalized anywhere in the pipeline.
    EXPECT_EQ(EncodeSnapshotBinary(parsed.snapshot), encoded) << "seed=" << seed;
  }
}

TEST(CheckpointCodecTest, JsonRoundTripMatchesBinary) {
  for (uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    ClusterSnapshot snapshot = RandomSnapshot(seed, 1 + seed % 5, seed % 6);
    std::string binary = EncodeSnapshotBinary(snapshot);
    std::string json = EncodeSnapshotJson(snapshot);
    SnapshotParseResult parsed = DecodeSnapshotJson(json);
    ASSERT_TRUE(parsed.ok) << "seed=" << seed << ": " << parsed.error;
    // Cross-codec equivalence: the JSON round trip reconstructs a snapshot whose binary
    // encoding is byte-identical to the original's — the two formats carry the same state.
    EXPECT_EQ(EncodeSnapshotBinary(parsed.snapshot), binary) << "seed=" << seed;
  }
}

TEST(CheckpointCodecTest, AutoDetectDispatchesOnEncoding) {
  ClusterSnapshot snapshot = RandomSnapshot(21, 4, 3);
  EXPECT_TRUE(DecodeSnapshot(EncodeSnapshotBinary(snapshot)).ok);
  EXPECT_TRUE(DecodeSnapshot(EncodeSnapshotJson(snapshot)).ok);
  SnapshotParseResult junk = DecodeSnapshot("not a snapshot at all");
  EXPECT_FALSE(junk.ok);
  EXPECT_FALSE(junk.error.empty());
}

TEST(CheckpointCodecTest, EmptyClusterRoundTrips) {
  // Degenerate content: no blocks, no pending tasks, zero metrics — the snapshot of a
  // freshly started (or fully drained and idle) cluster.
  BlockManager blocks(Grid(), kEpsG, kDeltaG);
  AllocationMetrics metrics;
  SnapshotMeta meta;
  meta.checkpoint_time = 0.0;
  meta.next_cycle_time = 1.0;
  meta.num_shards = 4;  // More shards than blocks (all clocks zero).
  ClusterSnapshot snapshot = CaptureSnapshot(blocks, {}, metrics, meta);
  ASSERT_EQ(ValidateSnapshot(snapshot), "");
  std::string encoded = EncodeSnapshotBinary(snapshot);
  SnapshotParseResult parsed = DecodeSnapshotBinary(encoded);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(EncodeSnapshotBinary(parsed.snapshot), encoded);
  SnapshotParseResult json = DecodeSnapshotJson(EncodeSnapshotJson(snapshot));
  ASSERT_TRUE(json.ok) << json.error;
  EXPECT_TRUE(json.snapshot.blocks.empty());
}

TEST(CheckpointCodecTest, EveryBinaryTruncationIsRejected) {
  ClusterSnapshot snapshot = RandomSnapshot(31, 3, 4);
  std::string encoded = EncodeSnapshotBinary(snapshot);
  for (size_t len = 0; len < encoded.size(); ++len) {
    SnapshotParseResult parsed = DecodeSnapshotBinary(encoded.substr(0, len));
    ASSERT_FALSE(parsed.ok) << "prefix length " << len;
    ASSERT_FALSE(parsed.error.empty()) << "prefix length " << len;
  }
}

TEST(CheckpointCodecTest, EveryBinaryBitFlipIsRejected) {
  ClusterSnapshot snapshot = RandomSnapshot(32, 3, 3);
  std::string encoded = EncodeSnapshotBinary(snapshot);
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit : {0, 3, 7}) {
      std::string corrupted = encoded;
      corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
      SnapshotParseResult parsed = DecodeSnapshotBinary(corrupted);
      ASSERT_FALSE(parsed.ok) << "byte " << byte << " bit " << bit;
      ASSERT_FALSE(parsed.error.empty()) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(CheckpointCodecTest, EveryJsonBitFlipIsRejected) {
  // JSON carries no raw payload, but it does carry a checksum over the canonical payload
  // encoding, so any field edit that survives the parser still fails verification.
  ClusterSnapshot snapshot = RandomSnapshot(33, 2, 2);
  std::string json = EncodeSnapshotJson(snapshot);
  for (size_t byte = 0; byte < json.size(); ++byte) {
    std::string corrupted = json;
    corrupted[byte] = static_cast<char>(corrupted[byte] ^ 1);
    SnapshotParseResult parsed = DecodeSnapshotJson(corrupted);
    ASSERT_FALSE(parsed.ok) << "byte " << byte << " (" << json[byte] << " -> "
                            << corrupted[byte] << ")";
  }
}

TEST(CheckpointCodecTest, WrongVersionIsRejectedWithDiagnostic) {
  ClusterSnapshot snapshot = RandomSnapshot(34, 2, 2);
  std::string encoded = EncodeSnapshotBinary(snapshot);
  encoded[8] = static_cast<char>(kSnapshotFormatVersion + 1);  // Version field (LE) byte 0.
  SnapshotParseResult parsed = DecodeSnapshotBinary(encoded);
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("version"), std::string::npos) << parsed.error;

  std::string json = EncodeSnapshotJson(snapshot);
  size_t pos = json.find("\"version\":2");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 11, "\"version\":9");
  SnapshotParseResult json_parsed = DecodeSnapshotJson(json);
  ASSERT_FALSE(json_parsed.ok);
  EXPECT_NE(json_parsed.error.find("version"), std::string::npos) << json_parsed.error;
}

TEST(CheckpointCodecTest, JsonStructuralCorruptionIsRejected) {
  ClusterSnapshot snapshot = RandomSnapshot(35, 2, 2);
  std::string json = EncodeSnapshotJson(snapshot);
  // Truncations at every prefix length.
  for (size_t len = 0; len < json.size(); ++len) {
    ASSERT_FALSE(DecodeSnapshotJson(json.substr(0, len)).ok) << "prefix " << len;
  }
  // Unknown key.
  std::string unknown = json;
  unknown.insert(1, "\"surprise\":1,");
  SnapshotParseResult parsed = DecodeSnapshotJson(unknown);
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("surprise"), std::string::npos) << parsed.error;
  // Wrong format tag.
  std::string wrong_tag = json;
  size_t tag = wrong_tag.find("dpack-snapshot");
  ASSERT_NE(tag, std::string::npos);
  wrong_tag.replace(tag, 14, "dpack-snapshut");
  EXPECT_FALSE(DecodeSnapshotJson(wrong_tag).ok);
}

TEST(CheckpointCodecTest, ValidationCatchesInconsistentStates) {
  auto expect_invalid = [](ClusterSnapshot snapshot, const char* what) {
    std::string error = ValidateSnapshot(snapshot);
    EXPECT_FALSE(error.empty()) << what;
    // An invalid snapshot must also never decode: the encoder will happily frame it, but
    // both decoders re-validate.
    SnapshotParseResult parsed = DecodeSnapshotBinary(EncodeSnapshotBinary(snapshot));
    EXPECT_FALSE(parsed.ok) << what;
  };

  ClusterSnapshot base = RandomSnapshot(36, 3, 3);
  ASSERT_EQ(ValidateSnapshot(base), "");

  {
    ClusterSnapshot s = base;
    s.blocks[1].unlocked_fraction = 1.5;
    expect_invalid(std::move(s), "unlocked fraction > 1");
  }
  {
    ClusterSnapshot s = base;
    s.blocks[0].consumed[2] = -0.25;
    expect_invalid(std::move(s), "negative consumed budget");
  }
  {
    ClusterSnapshot s = base;
    s.blocks[0].consumed[0] = std::numeric_limits<double>::quiet_NaN();
    expect_invalid(std::move(s), "NaN consumed budget");
  }
  {
    ClusterSnapshot s = base;
    s.blocks[2].id = 7;
    expect_invalid(std::move(s), "non-dense block ids");
  }
  {
    ClusterSnapshot s = base;
    s.manager_epoch += 1;
    expect_invalid(std::move(s), "epoch out of step with block count");
  }
  {
    ClusterSnapshot s = base;
    s.shard_clocks[0].version += 1;
    expect_invalid(std::move(s), "shard clock out of step with block versions");
  }
  {
    ClusterSnapshot s = base;
    s.metrics.allocated = s.metrics.submitted + 1;
    expect_invalid(std::move(s), "allocated > submitted");
  }
  {
    ClusterSnapshot s = base;
    s.metrics.submitted += 1;  // Breaks submitted - allocated - evicted == pending.
    expect_invalid(std::move(s), "counts out of step with the pending queue");
  }
  {
    ClusterSnapshot s = base;
    if (!s.pending.empty()) {
      s.pending[0].blocks.push_back(static_cast<BlockId>(s.blocks.size()));
      expect_invalid(std::move(s), "pending task referencing unknown block");
    }
  }
  {
    ClusterSnapshot s = base;
    s.grid_orders[0] = s.grid_orders[1];  // Not strictly increasing.
    expect_invalid(std::move(s), "non-increasing grid orders");
  }
}

TEST(CheckpointCodecTest, RestoreRebuildsByteIdenticalManager) {
  ClusterSnapshot snapshot = RandomSnapshot(41, 5, 4);
  BlockManager restored = RestoreBlockManager(snapshot);
  EXPECT_EQ(restored.epoch(), snapshot.manager_epoch);
  EXPECT_EQ(restored.block_count(), snapshot.blocks.size());
  EXPECT_EQ(restored.eps_g(), snapshot.eps_g);
  EXPECT_EQ(restored.delta_g(), snapshot.delta_g);
  for (size_t j = 0; j < snapshot.blocks.size(); ++j) {
    const PrivacyBlock& block = restored.block(static_cast<BlockId>(j));
    const SnapshotBlockState& state = snapshot.blocks[j];
    EXPECT_EQ(block.version(), state.version) << "block " << j;
    EXPECT_EQ(block.arrival_time(), state.arrival_time) << "block " << j;
    EXPECT_EQ(block.unlocked_fraction(), state.unlocked_fraction) << "block " << j;
    for (size_t a = 0; a < state.capacity.size(); ++a) {
      EXPECT_EQ(block.capacity().epsilon(a), state.capacity[a]) << "block " << j;
      EXPECT_EQ(block.consumed().epsilon(a), state.consumed[a]) << "block " << j;
    }
  }
  // A re-capture of the restored state is byte-identical to the original snapshot.
  std::vector<Task> pending = RestorePendingTasks(snapshot, restored.grid());
  AllocationMetrics metrics = RestoreMetrics(snapshot.metrics);
  ClusterSnapshot recaptured = CaptureSnapshot(restored, pending, metrics, snapshot.meta);
  EXPECT_EQ(EncodeSnapshotBinary(recaptured), EncodeSnapshotBinary(snapshot));
}

TEST(CheckpointCodecTest, RestoreMetricsReproducesAccessors) {
  ClusterSnapshot snapshot = RandomSnapshot(42, 2, 5);
  AllocationMetrics metrics = RestoreMetrics(snapshot.metrics);
  const SnapshotMetricsState& m = snapshot.metrics;
  EXPECT_EQ(metrics.submitted(), m.submitted);
  EXPECT_EQ(metrics.allocated(), m.allocated);
  EXPECT_EQ(metrics.evicted(), m.evicted);
  EXPECT_EQ(metrics.submitted_weight(), m.submitted_weight);
  EXPECT_EQ(metrics.allocated_weight(), m.allocated_weight);
  EXPECT_EQ(metrics.submitted_fair_share(), m.submitted_fair_share);
  EXPECT_EQ(metrics.allocated_fair_share(), m.allocated_fair_share);
  ASSERT_EQ(metrics.delays().samples(), m.delay_samples);
  RunningStat::State runtime = metrics.cycle_runtime_seconds().state();
  EXPECT_EQ(runtime.count, m.cycle_runtime.count);
  EXPECT_EQ(runtime.mean, m.cycle_runtime.mean);
  EXPECT_EQ(runtime.m2, m.cycle_runtime.m2);
  EXPECT_EQ(runtime.min, m.cycle_runtime.min);
  EXPECT_EQ(runtime.max, m.cycle_runtime.max);
  EXPECT_EQ(runtime.sum, m.cycle_runtime.sum);
}

}  // namespace
}  // namespace dpack
