// Crash–restart recovery proofs (ISSUE 4): checkpointing a run at cycle k, restoring from
// the serialized snapshot, and running to completion must produce byte-identical grant
// sequences and deterministic metrics to the uninterrupted run — for every k, for shard
// counts {1, 2, 4}, sync and async, and for mid-submission-drain kill points. The suite
// runs under the TSan CI leg (the async engines spawn per-shard scheduler threads on every
// resumed run) and the ASan/UBSan leg.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/scheduler.h"
#include "src/orchestrator/checkpoint.h"
#include "src/orchestrator/cluster_orchestrator.h"
#include "src/sim/sim_driver.h"
#include "src/workload/curve_pool.h"
#include "src/workload/microbenchmark.h"

namespace dpack {
namespace {

constexpr double kEpsG = 10.0;
constexpr double kDeltaG = 1e-7;

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

struct RecoveryWorkload {
  std::vector<Task> tasks;
  SimConfig config;
};

// A contended online workload: more demand than the unlocking stream admits, so queues
// persist across cycles, grants trickle, and some tasks time out — every state the
// snapshot must carry. `weighted` drives the FPTAS best-alpha path for DPack.
RecoveryWorkload MakeWorkload(uint64_t seed, bool weighted) {
  RecoveryWorkload w;
  w.config.num_blocks = 8;
  w.config.period = 1.0;
  w.config.unlock_steps = 6;
  w.config.horizon_override = 18.0;  // 19 cycles at t = 0..18.
  w.config.record_grant_trace = true;

  Rng rng(seed);
  RdpCurve capacity = BlockCapacityCurve(Grid(), kEpsG, kDeltaG);
  TaskId next_id = 0;
  for (size_t t = 0; t < 15; ++t) {
    int64_t arrivals = rng.UniformInt(1, 4);
    for (int64_t a = 0; a < arrivals; ++a) {
      double weight = weighted ? rng.Uniform(0.5, 6.0) : 1.0;
      Task task(next_id++, weight, capacity.Scaled(rng.Uniform(0.05, 0.45)));
      task.arrival_time = static_cast<double>(t);
      task.timeout = rng.Bernoulli(0.3) ? rng.Uniform(3.0, 8.0)
                                        : std::numeric_limits<double>::infinity();
      task.num_recent_blocks = static_cast<size_t>(rng.UniformInt(1, 3));
      w.tasks.push_back(std::move(task));
    }
  }
  return w;
}

std::unique_ptr<Scheduler> MakeScheduler(GreedyMetric metric) {
  return std::make_unique<GreedyScheduler>(
      metric, GreedySchedulerOptions{.eta = 0.05, .incremental = true});
}

// The deterministic face of the metrics (cycle runtimes are wall clock and excluded).
void ExpectMetricsEqual(const AllocationMetrics& actual, const AllocationMetrics& expected,
                        const std::string& label) {
  EXPECT_EQ(actual.submitted(), expected.submitted()) << label;
  EXPECT_EQ(actual.allocated(), expected.allocated()) << label;
  EXPECT_EQ(actual.evicted(), expected.evicted()) << label;
  EXPECT_EQ(actual.submitted_weight(), expected.submitted_weight()) << label;
  EXPECT_EQ(actual.allocated_weight(), expected.allocated_weight()) << label;
  EXPECT_EQ(actual.submitted_fair_share(), expected.submitted_fair_share()) << label;
  EXPECT_EQ(actual.allocated_fair_share(), expected.allocated_fair_share()) << label;
  EXPECT_EQ(actual.delays().samples(), expected.delays().samples()) << label;
}

// Kills the run at cycle `k` (optionally mid-submission-drain), ships the snapshot through
// the binary wire format, resumes, and diffs grants + metrics against `reference`.
void CheckSplitRun(GreedyMetric metric, const RecoveryWorkload& workload,
                   const SimResult& reference, size_t k, bool mid_drain, size_t num_shards,
                   bool async, const std::string& label) {
  SimConfig split_config = workload.config;
  split_config.num_shards = num_shards;
  split_config.async = async;
  split_config.stop_after_cycles = k;
  split_config.stop_mid_drain = mid_drain;
  SimResult prefix =
      RunOnlineSimulation(MakeScheduler(metric), workload.tasks, split_config);
  ASSERT_TRUE(prefix.snapshot.has_value()) << label;
  ASSERT_EQ(prefix.cycles_run, k) << label;

  // The crash ships the snapshot through the wire format, as a real recovery would.
  SnapshotParseResult parsed = DecodeSnapshot(EncodeSnapshotBinary(*prefix.snapshot));
  ASSERT_TRUE(parsed.ok) << label << ": " << parsed.error;

  SimConfig resume_config = workload.config;
  resume_config.num_shards = num_shards;
  resume_config.async = async;
  SimResult suffix = ResumeOnlineSimulation(MakeScheduler(metric), parsed.snapshot,
                                            workload.tasks, resume_config);

  // Byte-identical grant sequence: the prefix's cycles plus the resumed cycles equal the
  // uninterrupted run's trace, cycle by cycle, id by id.
  std::vector<std::vector<TaskId>> stitched = prefix.grant_trace;
  stitched.insert(stitched.end(), suffix.grant_trace.begin(), suffix.grant_trace.end());
  EXPECT_EQ(stitched, reference.grant_trace) << label;

  EXPECT_EQ(suffix.cycles_run, reference.cycles_run) << label;
  EXPECT_EQ(suffix.blocks_created, reference.blocks_created) << label;
  EXPECT_EQ(suffix.pending_at_end, reference.pending_at_end) << label;
  ExpectMetricsEqual(suffix.metrics, reference.metrics, label);
}

class RecoveryEquivalenceTest : public testing::TestWithParam<GreedyMetric> {};

TEST_P(RecoveryEquivalenceTest, EveryKillCycleRestoresToIdenticalRun) {
  // The headline property: for shards {1, 2, 4} x {sync, async}, checkpoint at cycle k +
  // restore + run to completion == uninterrupted run, for EVERY cycle boundary k.
  RecoveryWorkload workload = MakeWorkload(/*seed=*/7, /*weighted=*/true);
  SimResult reference =
      RunOnlineSimulation(MakeScheduler(GetParam()), workload.tasks, workload.config);
  ASSERT_GT(reference.cycles_run, 2u);
  ASSERT_GT(reference.metrics.allocated(), 0u);
  ASSERT_GT(reference.metrics.evicted(), 0u);  // Timeouts exercised.
  for (size_t num_shards : {1u, 2u, 4u}) {
    for (bool async : {false, true}) {
      for (size_t k = 1; k < reference.cycles_run; ++k) {
        std::string label = "metric=" + std::to_string(static_cast<int>(GetParam())) +
                            " shards=" + std::to_string(num_shards) +
                            " async=" + std::to_string(async) + " k=" + std::to_string(k);
        CheckSplitRun(GetParam(), workload, reference, k, /*mid_drain=*/false, num_shards,
                      async, label);
      }
    }
  }
}

TEST_P(RecoveryEquivalenceTest, MidDrainKillPointsRestoreToIdenticalRun) {
  // The mid-submission-drain kill: arrivals at the next cycle instant are already in the
  // queue, the cycle that would schedule them has not run. Resume executes it first.
  RecoveryWorkload workload = MakeWorkload(/*seed=*/19, /*weighted=*/false);
  SimResult reference =
      RunOnlineSimulation(MakeScheduler(GetParam()), workload.tasks, workload.config);
  ASSERT_GT(reference.cycles_run, 2u);
  for (size_t k = 1; k < reference.cycles_run; ++k) {
    std::string label = "mid-drain metric=" + std::to_string(static_cast<int>(GetParam())) +
                        " k=" + std::to_string(k);
    CheckSplitRun(GetParam(), workload, reference, k, /*mid_drain=*/true, /*num_shards=*/2,
                  /*async=*/false, label);
  }
}

TEST_P(RecoveryEquivalenceTest, RandomizedKillSoak) {
  // Randomized kill points across randomized workloads, engine shapes, and drain states —
  // the crash-restart soak. Every trial must stitch back to its own reference.
  for (uint64_t seed : {101u, 202u, 303u}) {
    RecoveryWorkload workload = MakeWorkload(seed, /*weighted=*/seed % 2 == 0);
    SimResult reference =
        RunOnlineSimulation(MakeScheduler(GetParam()), workload.tasks, workload.config);
    ASSERT_GT(reference.cycles_run, 2u);
    Rng rng(seed * 17 + 1);
    for (int trial = 0; trial < 4; ++trial) {
      size_t k = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(reference.cycles_run) - 1));
      bool mid_drain = rng.Bernoulli(0.5);
      size_t num_shards = static_cast<size_t>(rng.UniformInt(1, 4));
      bool async = rng.Bernoulli(0.5);
      std::string label = "soak seed=" + std::to_string(seed) + " k=" + std::to_string(k) +
                          " mid_drain=" + std::to_string(mid_drain) +
                          " shards=" + std::to_string(num_shards) +
                          " async=" + std::to_string(async);
      CheckSplitRun(GetParam(), workload, reference, k, mid_drain, num_shards, async, label);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, RecoveryEquivalenceTest,
                         testing::Values(GreedyMetric::kDpack, GreedyMetric::kDpf,
                                         GreedyMetric::kArea, GreedyMetric::kFcfs),
                         [](const testing::TestParamInfo<GreedyMetric>& param_info) {
                           switch (param_info.param) {
                             case GreedyMetric::kDpack:
                               return "DPack";
                             case GreedyMetric::kDpf:
                               return "DPF";
                             case GreedyMetric::kArea:
                               return "Area";
                             case GreedyMetric::kFcfs:
                               return "FCFS";
                           }
                           return "unknown";
                         });

TEST(RecoveryJsonTest, KillPastTheFinalCycleStillCaptures) {
  // stop_after_cycles clamps to the run's total cycle count: the snapshot then holds the
  // fully-run state and a resume has nothing left to schedule, but the capture is never
  // silently skipped.
  RecoveryWorkload workload = MakeWorkload(/*seed=*/3, /*weighted=*/false);
  SimResult reference =
      RunOnlineSimulation(MakeScheduler(GreedyMetric::kDpf), workload.tasks, workload.config);
  SimConfig split_config = workload.config;
  split_config.stop_after_cycles = reference.cycles_run + 50;
  SimResult full =
      RunOnlineSimulation(MakeScheduler(GreedyMetric::kDpf), workload.tasks, split_config);
  ASSERT_TRUE(full.snapshot.has_value());
  EXPECT_EQ(full.cycles_run, reference.cycles_run);
  EXPECT_EQ(full.grant_trace, reference.grant_trace);
  SimResult resumed = ResumeOnlineSimulation(MakeScheduler(GreedyMetric::kDpf),
                                             *full.snapshot, workload.tasks, workload.config);
  EXPECT_EQ(resumed.cycles_run, reference.cycles_run);
  ExpectMetricsEqual(resumed.metrics, reference.metrics, "clamped kill");
}

TEST(RecoveryJsonTest, JsonSnapshotRestoresIdentically) {
  // The JSON wire format preserves the equivalence too (it is the debuggable encoding an
  // operator might hand-inspect and replay).
  RecoveryWorkload workload = MakeWorkload(/*seed=*/5, /*weighted=*/true);
  SimResult reference =
      RunOnlineSimulation(MakeScheduler(GreedyMetric::kDpack), workload.tasks,
                          workload.config);
  SimConfig split_config = workload.config;
  split_config.stop_after_cycles = reference.cycles_run / 2;
  SimResult prefix =
      RunOnlineSimulation(MakeScheduler(GreedyMetric::kDpack), workload.tasks, split_config);
  ASSERT_TRUE(prefix.snapshot.has_value());
  SnapshotParseResult parsed = DecodeSnapshot(EncodeSnapshotJson(*prefix.snapshot));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  SimResult suffix = ResumeOnlineSimulation(MakeScheduler(GreedyMetric::kDpack),
                                            parsed.snapshot, workload.tasks, workload.config);
  std::vector<std::vector<TaskId>> stitched = prefix.grant_trace;
  stitched.insert(stitched.end(), suffix.grant_trace.begin(), suffix.grant_trace.end());
  EXPECT_EQ(stitched, reference.grant_trace);
  ExpectMetricsEqual(suffix.metrics, reference.metrics, "json");
}

TEST(OrchestratorRecoveryTest, PeriodicCheckpointsFlowThroughTheStateStore) {
  // The wall-clock orchestrator persists a snapshot every K cycles through the simulated
  // API server; the persistence traffic lands in the run's store accounting.
  OrchestratorConfig config;
  config.offline_blocks = 2;
  config.online_blocks = 3;
  config.period = 1.0;
  config.unlock_steps = 2;
  config.virtual_unit_wall_ms = 2.0;
  config.store_latency_us = 10.0;
  config.checkpoint_every_cycles = 2;

  RdpCurve capacity = BlockCapacityCurve(Grid(), kEpsG, kDeltaG);
  std::vector<Task> tasks;
  for (int i = 0; i < 24; ++i) {
    Task t(i, 1.0, capacity.Scaled(0.03));
    t.num_recent_blocks = 2;
    t.arrival_time = static_cast<double>(i % 4);
    tasks.push_back(std::move(t));
  }

  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpack), config);
  OrchestratorRunResult result = orchestrator.RunOnline(tasks);
  EXPECT_GT(result.checkpoints_taken, 0u);
  EXPECT_GT(result.store_bytes_written, 0u);
  ASSERT_FALSE(result.last_checkpoint.empty());
  // Checkpoint traffic is charged to the same store as the claim traffic.
  EXPECT_GE(result.store_operations, result.checkpoints_taken);

  SnapshotParseResult parsed = DecodeSnapshot(result.last_checkpoint);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.snapshot.meta.period, config.period);

  // Crash-restart: resume the same orchestrator from the persisted snapshot. The run is
  // wall-clock paced, so exact grant equality is the sim suite's job; here the recovered
  // run must complete and the cumulative accounting must stay monotone and conserved.
  OrchestratorRunResult resumed = orchestrator.ResumeFrom(parsed.snapshot, tasks);
  EXPECT_GE(resumed.metrics.submitted(), parsed.snapshot.metrics.submitted);
  EXPECT_GE(resumed.metrics.allocated(), parsed.snapshot.metrics.allocated);
  EXPECT_LE(resumed.metrics.submitted(), tasks.size());
  EXPECT_LE(resumed.metrics.allocated() + resumed.metrics.evicted(),
            resumed.metrics.submitted());
  EXPECT_GT(resumed.cycles, parsed.snapshot.meta.cycles_completed);
}

TEST(OrchestratorRecoveryTest, ResumedRunKeepsCheckpointing) {
  OrchestratorConfig config;
  config.offline_blocks = 2;
  config.online_blocks = 2;
  config.period = 1.0;
  config.unlock_steps = 2;
  config.virtual_unit_wall_ms = 2.0;
  config.store_latency_us = 0.0;
  config.checkpoint_every_cycles = 1;

  RdpCurve capacity = BlockCapacityCurve(Grid(), kEpsG, kDeltaG);
  std::vector<Task> tasks;
  for (int i = 0; i < 10; ++i) {
    Task t(i, 1.0, capacity.Scaled(0.02));
    t.num_recent_blocks = 1;
    t.arrival_time = static_cast<double>(i % 3);
    tasks.push_back(std::move(t));
  }
  ClusterOrchestrator orchestrator(CreateScheduler(SchedulerKind::kDpf), config);
  OrchestratorRunResult first = orchestrator.RunOnline(tasks);
  ASSERT_FALSE(first.last_checkpoint.empty());
  SnapshotParseResult parsed = DecodeSnapshot(first.last_checkpoint);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  OrchestratorRunResult resumed = orchestrator.ResumeFrom(parsed.snapshot, tasks);
  // The resumed run checkpoints on its own cadence too, so a second crash anywhere in it
  // would recover the same way.
  EXPECT_GT(resumed.checkpoints_taken, 0u);
  ASSERT_FALSE(resumed.last_checkpoint.empty());
  EXPECT_TRUE(DecodeSnapshot(resumed.last_checkpoint).ok);
}

}  // namespace
}  // namespace dpack
