#!/usr/bin/env python3
"""Tests for scripts/check_bench_regression.py — the counter gate behind every perf claim.

Covers the three behaviors PRs 4/6 added (and everything a gate must not get wrong):
zero-baseline counters compared with an absolute tolerance, missing-baseline-key failures
in both directions, and the shrunken-sweep diagnostic for missing .../blocks:N points."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
SCRIPT = os.path.join(REPO_ROOT, "scripts", "check_bench_regression.py")


def bench(name, **fields):
    entry = {"name": name}
    entry.update(fields)
    return entry


class GateHarness(unittest.TestCase):
    def run_gate(self, baseline_entries, *current_entry_lists):
        """Writes baseline + N current files, runs the gate, returns (rc, stdout)."""
        paths = []
        try:
            for entries in (baseline_entries,) + current_entry_lists:
                fh = tempfile.NamedTemporaryFile(
                    "w", suffix=".json", delete=False)
                json.dump({"benchmarks": entries}, fh)
                fh.close()
                paths.append(fh.name)
            proc = subprocess.run(
                [sys.executable, SCRIPT] + paths, capture_output=True, text=True)
            return proc.returncode, proc.stdout
        finally:
            for path in paths:
                os.unlink(path)


class PassAndDrift(GateHarness):
    def test_identical_counters_pass(self):
        entries = [bench("BM_Steady/shards:4", tasks_rescored_per_cycle=64.0)]
        rc, out = self.run_gate(entries, entries)
        self.assertEqual(rc, 0, out)
        self.assertIn("no counter regressions", out)

    def test_drift_within_tolerance_passes(self):
        rc, out = self.run_gate(
            [bench("BM_Steady", blocks_refreshed_per_cycle=100.0)],
            [bench("BM_Steady", blocks_refreshed_per_cycle=120.0)])  # 20% < 25%
        self.assertEqual(rc, 0, out)

    def test_drift_beyond_tolerance_fails_both_directions(self):
        for current in (131.0, 74.0):  # +31% and -26%
            with self.subTest(current=current):
                rc, out = self.run_gate(
                    [bench("BM_Steady", blocks_refreshed_per_cycle=100.0)],
                    [bench("BM_Steady", blocks_refreshed_per_cycle=current)])
                self.assertEqual(rc, 1, out)
                self.assertIn("REGRESSION", out)

    def test_time_fields_are_never_gated(self):
        rc, out = self.run_gate(
            [bench("BM_Steady", real_time=1.0, cpu_time=1.0, wall_ms=5.0,
                   tasks_rescored_per_cycle=10.0)],
            [bench("BM_Steady", real_time=900.0, cpu_time=900.0, wall_ms=900.0,
                   tasks_rescored_per_cycle=10.0)])
        self.assertEqual(rc, 0, out)


class ZeroBaselineAbsoluteTolerance(GateHarness):
    def test_zero_baseline_accepts_float_dust(self):
        # A relative tolerance on zero is an exact-match trap; the gate must accept
        # counter values within the absolute 1e-6 window (e.g. float-dump artifacts).
        rc, out = self.run_gate(
            [bench("BM_Steady", merge_allocs=0.0)],
            [bench("BM_Steady", merge_allocs=5e-7)])
        self.assertEqual(rc, 0, out)

    def test_zero_baseline_rejects_real_work(self):
        rc, out = self.run_gate(
            [bench("BM_Steady", merge_allocs=0.0)],
            [bench("BM_Steady", merge_allocs=1.0)])
        self.assertEqual(rc, 1, out)
        self.assertIn("REGRESSION", out)

    def test_zero_baseline_rejects_just_past_the_window(self):
        rc, out = self.run_gate(
            [bench("BM_Steady", full_recomputes=0.0)],
            [bench("BM_Steady", full_recomputes=2e-6)])
        self.assertEqual(rc, 1, out)

    def test_ring_and_pin_counters_are_gated(self):
        # ring_retries and pin_failures are zero by construction (the driver drains every
        # cycle; pinned legs only pick allowed cores) — the gate must treat them as real
        # counters, zero-baseline semantics included, not ignore them as unknown fields.
        rc, out = self.run_gate(
            [bench("BM_Async", ring_retries=0.0, pin_failures=0.0,
                   ring_publishes_per_cycle=4.0)],
            [bench("BM_Async", ring_retries=0.0, pin_failures=0.0,
                   ring_publishes_per_cycle=4.0)])
        self.assertEqual(rc, 0, out)
        rc, out = self.run_gate(
            [bench("BM_Async", ring_retries=0.0)],
            [bench("BM_Async", ring_retries=3.0)])
        self.assertEqual(rc, 1, out)
        self.assertIn("REGRESSION", out)
        rc, out = self.run_gate(
            [bench("BM_Async", pin_failures=0.0)],
            [bench("BM_Async", pin_failures=1.0)])
        self.assertEqual(rc, 1, out)


class MissingKeys(GateHarness):
    def test_current_counter_absent_from_baseline_fails(self):
        # An untracked counter is a gate with a hole in it.
        rc, out = self.run_gate(
            [bench("BM_Steady", tasks_rescored_per_cycle=10.0)],
            [bench("BM_Steady", tasks_rescored_per_cycle=10.0,
                   async_early_scores_per_cycle=3.0)])
        self.assertEqual(rc, 1, out)
        self.assertIn("missing baseline key", out)

    def test_new_benchmark_with_counters_but_no_baseline_entry_fails(self):
        rc, out = self.run_gate(
            [bench("BM_Steady", tasks_rescored_per_cycle=10.0)],
            [bench("BM_Steady", tasks_rescored_per_cycle=10.0),
             bench("BM_Brand_New", tasks_rescored_per_cycle=1.0)])
        self.assertEqual(rc, 1, out)
        self.assertIn("missing baseline key", out)

    def test_baseline_counter_absent_from_current_fails(self):
        rc, out = self.run_gate(
            [bench("BM_Steady", tasks_rescored_per_cycle=10.0,
                   blocks_refreshed_per_cycle=5.0)],
            [bench("BM_Steady", tasks_rescored_per_cycle=10.0)])
        self.assertEqual(rc, 1, out)
        self.assertIn("missing from the current run", out)


class ShrunkenSweep(GateHarness):
    def test_missing_sweep_point_gets_explicit_diagnostic(self):
        rc, out = self.run_gate(
            [bench("BM_Scale/blocks:10000", blocks_refreshed_per_cycle=32.0),
             bench("BM_Scale/blocks:1000000", blocks_refreshed_per_cycle=32.0)],
            [bench("BM_Scale/blocks:10000", blocks_refreshed_per_cycle=32.0)])
        self.assertEqual(rc, 1, out)
        self.assertIn("sweep point missing", out)
        self.assertIn("blocks:1000000", out)

    def test_missing_non_sweep_benchmark_gets_plain_message(self):
        rc, out = self.run_gate(
            [bench("BM_Gone", blocks_refreshed_per_cycle=1.0)],
            [bench("BM_Other", blocks_refreshed_per_cycle=1.0)])
        self.assertEqual(rc, 1, out)
        self.assertIn("present in baseline but missing", out)
        self.assertNotIn("sweep point missing", out)


class MultipleCurrentFiles(GateHarness):
    def test_current_files_merge_like_the_ci_invocation(self):
        # CI passes micro_scheduler.json + fig5/10/11 counter dumps in one call.
        rc, out = self.run_gate(
            [bench("BM_A", tasks_rescored_per_cycle=1.0),
             bench("BM_B", tasks_rescored_per_cycle=2.0)],
            [bench("BM_A", tasks_rescored_per_cycle=1.0)],
            [bench("BM_B", tasks_rescored_per_cycle=2.0)])
        self.assertEqual(rc, 0, out)

    def test_usage_error_without_enough_arguments(self):
        proc = subprocess.run([sys.executable, SCRIPT, "only_one.json"],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
