// Crash isolation proofs for the service fleet: SIGKILL any worker at a (seeded) random
// score round, under both recovery policies and multiple fleet shapes, and the grant trace
// must stay byte-identical to the uninterrupted service run AND to the in-process engine.
// Also: a hung (SIGSTOPped) worker is detected by heartbeat stall and recovered; and the
// checkpoint codec resumes a killed service run on an entirely fresh fleet with the
// stitched trace equal to the uninterrupted one.

#include <gtest/gtest.h>

#include <csignal>
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/subprocess.h"
#include "src/core/scheduler.h"
#include "src/orchestrator/checkpoint.h"
#include "src/service/grant_service.h"
#include "src/sim/service_sim.h"
#include "src/sim/sim_driver.h"
#include "src/workload/curve_pool.h"
#include "src/workload/scenario.h"

namespace dpack {
namespace {

constexpr uint64_t kSeed = 909;

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

const CurvePool& Pool() {
  static const CurvePool pool(Grid(), BlockCapacityCurve(Grid(), 10.0, 1e-7));
  return pool;
}

ScenarioWorkload Workload(const std::string& name) {
  ScenarioWorkload workload = GenerateScenario(Pool(), ScenarioByName(name, kSeed));
  workload.sim.record_grant_trace = true;
  return workload;
}

SimResult ReferenceRun(GreedyMetric metric, const ScenarioWorkload& workload) {
  auto scheduler = std::make_unique<GreedyScheduler>(
      metric, GreedySchedulerOptions{.eta = 0.05, .incremental = true});
  return RunOnlineSimulation(std::move(scheduler), workload.tasks, workload.sim);
}

const char* RecoveryName(ServiceRecovery recovery) {
  return recovery == ServiceRecovery::kRespawn ? "respawn" : "reassign";
}

TEST(ServiceRecoveryTest, KillMatrixYieldsByteIdenticalTraces) {
  Rng rng(kSeed);
  for (const std::string& name : {std::string("steady_poisson"), std::string("cohort_skew")}) {
    ScenarioWorkload workload = Workload(name);
    SimResult reference = ReferenceRun(GreedyMetric::kDpack, workload);
    ASSERT_GT(reference.cycles_run, 3u) << name;

    struct Shape {
      size_t workers;
      size_t shards;
    };
    for (const Shape& shape : {Shape{2, 2}, Shape{4, 4}}) {
      ServiceConfig base;
      base.num_workers = shape.workers;
      base.num_shards = shape.shards;
      ServiceSimResult unkilled =
          RunServiceSimulation(GreedyMetric::kDpack, workload.tasks, workload.sim, base);
      ASSERT_EQ(unkilled.sim.grant_trace, reference.grant_trace) << name;

      for (ServiceRecovery recovery :
           {ServiceRecovery::kReassign, ServiceRecovery::kRespawn}) {
        // Randomized-but-seeded kill point in the first half of the run: score rounds only
        // advance on non-empty batches, so a draw near cycles_run could land past the last
        // round (and never fire); the first half is always densely scheduled.
        uint64_t kill_round = static_cast<uint64_t>(
            rng.UniformInt(1, std::max<int64_t>(2, static_cast<int64_t>(reference.cycles_run) / 2)));
        size_t kill_worker =
            static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(shape.workers) - 1));
        std::string label = name + " workers=" + std::to_string(shape.workers) +
                            " shards=" + std::to_string(shape.shards) + " kill_round=" +
                            std::to_string(kill_round) + " kill_worker=" +
                            std::to_string(kill_worker) + " " + RecoveryName(recovery);

        ServiceConfig killed = base;
        killed.recovery = recovery;
        killed.kill_at_round = kill_round;
        killed.kill_worker = kill_worker;
        ServiceSimResult result =
            RunServiceSimulation(GreedyMetric::kDpack, workload.tasks, workload.sim, killed);
        EXPECT_EQ(result.sim.grant_trace, unkilled.sim.grant_trace) << label;
        EXPECT_EQ(result.sim.grant_trace, reference.grant_trace) << label;
        EXPECT_EQ(result.sim.metrics.allocated(), reference.metrics.allocated()) << label;
        EXPECT_EQ(result.counters.recoveries, 1u) << label;
        if (recovery == ServiceRecovery::kRespawn) {
          EXPECT_EQ(result.counters.respawns, 1u) << label;
          EXPECT_EQ(result.counters.state_replays, 1u) << label;
        } else {
          EXPECT_EQ(result.counters.respawns, 0u) << label;
          EXPECT_EQ(result.counters.state_replays, 0u) << label;
        }
      }
    }
  }
}

// Kill every worker index in turn: no shard assignment is special, including worker 0's.
TEST(ServiceRecoveryTest, AnyWorkerIndexIsExpendable) {
  ScenarioWorkload workload = Workload("bursty_hotspot");
  SimResult reference = ReferenceRun(GreedyMetric::kDpack, workload);
  for (size_t kill_worker = 0; kill_worker < 4; ++kill_worker) {
    ServiceConfig config;
    config.num_workers = 4;
    config.num_shards = 4;
    config.kill_at_round = 2;
    config.kill_worker = kill_worker;
    ServiceSimResult result =
        RunServiceSimulation(GreedyMetric::kDpack, workload.tasks, workload.sim, config);
    EXPECT_EQ(result.sim.grant_trace, reference.grant_trace) << "worker " << kill_worker;
    EXPECT_EQ(result.counters.recoveries, 1u) << "worker " << kill_worker;
  }
}

// FCFS exercises the no-scoring merge path; a kill must not perturb arrival order.
TEST(ServiceRecoveryTest, FcfsSurvivesKill) {
  ScenarioWorkload workload = Workload("trickle_drain");
  SimResult reference = ReferenceRun(GreedyMetric::kFcfs, workload);
  ServiceConfig config;
  config.num_workers = 2;
  config.num_shards = 2;
  config.kill_at_round = 1;
  config.kill_worker = 1;
  config.recovery = ServiceRecovery::kRespawn;
  ServiceSimResult result =
      RunServiceSimulation(GreedyMetric::kFcfs, workload.tasks, workload.sim, config);
  EXPECT_EQ(result.sim.grant_trace, reference.grant_trace);
  EXPECT_EQ(result.counters.recoveries, 1u);
}

// A worker that stops making progress without dying (SIGSTOP) must be detected by the
// heartbeat stall, killed by the daemon, and recovered — same grants as a healthy run.
TEST(ServiceRecoveryTest, HungWorkerDetectedByHeartbeat) {
  auto build_blocks = []() {
    BlockManager blocks(Grid(), 10.0, 1e-7);
    for (int b = 0; b < 4; ++b) blocks.AddBlock(0.0, /*unlocked=*/true);
    return blocks;
  };
  auto batch = [](int64_t first_id) {
    std::vector<Task> tasks;
    for (int i = 0; i < 4; ++i) {
      Task task(first_id + i, /*weight=*/1.0, Pool().capacity().Scaled(0.1));
      task.blocks = {i % 4, (i + 1) % 4};
      task.arrival_time = 0.0;
      tasks.push_back(std::move(task));
    }
    return tasks;
  };

  BlockManager service_blocks = build_blocks();
  GrantServiceConfig config;
  config.service.num_workers = 2;
  config.service.num_shards = 2;
  // Tight budget so the hang is detected in milliseconds, not seconds.
  config.service.poll_sleep_us = 20;
  config.service.stall_budget = 3000;
  GrantService service(GreedyMetric::kDpack, &service_blocks, config);
  for (Task& task : batch(0)) ASSERT_TRUE(service.Submit(std::move(task)));
  ASSERT_EQ(service.RunCycle(0.0), 4u);

  // Freeze worker 1 mid-service. The next cycle's score request to it goes unanswered; the
  // daemon must notice the flat heartbeat, SIGKILL it, and reassign its shard.
  pid_t hung = service.scheduler().transport().pid(1);
  KillChild(hung, SIGSTOP);
  for (Task& task : batch(100)) ASSERT_TRUE(service.Submit(std::move(task)));
  EXPECT_EQ(service.RunCycle(1.0), 4u);
  EXPECT_EQ(service.counters().recoveries, 1u);
  EXPECT_FALSE(service.scheduler().transport().alive(1));

  // The recovered fleet's grants match an in-process run of the same two cycles.
  BlockManager reference_blocks = build_blocks();
  auto inner = std::make_unique<GreedyScheduler>(
      GreedyMetric::kDpack, GreedySchedulerOptions{.eta = 0.05, .incremental = true});
  OnlineScheduler reference(std::move(inner), &reference_blocks, OnlineSchedulerConfig{});
  for (Task& task : batch(0)) ASSERT_TRUE(reference.Submit(std::move(task)));
  reference.RunCycle(0.0);
  std::vector<TaskId> first_cycle = reference.last_granted();
  for (Task& task : batch(100)) ASSERT_TRUE(reference.Submit(std::move(task)));
  reference.RunCycle(1.0);
  EXPECT_EQ(service.last_granted(), reference.last_granted());
}

// Checkpoint + resume on a brand-new fleet: the service composes with the recovery
// subsystem unchanged — stop at cycle k, ship the snapshot through the binary codec, resume
// with fresh processes (and a kill injected into the resumed leg for good measure), and the
// stitched trace equals the uninterrupted run's.
TEST(ServiceRecoveryTest, CheckpointResumesOnFreshFleet) {
  ScenarioWorkload workload = Workload("jittered_heavy");
  SimResult reference = ReferenceRun(GreedyMetric::kDpack, workload);
  ASSERT_GT(reference.cycles_run, 4u);

  ServiceConfig config;
  config.num_workers = 2;
  config.num_shards = 2;

  SimConfig split = workload.sim;
  split.stop_after_cycles = reference.cycles_run / 2;
  ServiceSimResult prefix =
      RunServiceSimulation(GreedyMetric::kDpack, workload.tasks, split, config);
  ASSERT_TRUE(prefix.sim.snapshot.has_value());

  SnapshotParseResult parsed = DecodeSnapshot(EncodeSnapshotBinary(*prefix.sim.snapshot));
  ASSERT_TRUE(parsed.ok) << parsed.error;

  ServiceConfig resumed_config = config;
  resumed_config.kill_at_round = 2;
  resumed_config.kill_worker = 0;
  resumed_config.recovery = ServiceRecovery::kRespawn;
  ServiceSimResult resumed = ResumeServiceSimulation(
      GreedyMetric::kDpack, parsed.snapshot, workload.tasks, workload.sim, resumed_config);

  std::vector<std::vector<TaskId>> stitched = prefix.sim.grant_trace;
  stitched.insert(stitched.end(), resumed.sim.grant_trace.begin(),
                  resumed.sim.grant_trace.end());
  EXPECT_EQ(stitched, reference.grant_trace);
  EXPECT_EQ(resumed.sim.pending_at_end, reference.pending_at_end);
  EXPECT_EQ(resumed.sim.metrics.allocated(), reference.metrics.allocated());
  EXPECT_EQ(resumed.counters.recoveries, 1u);
  EXPECT_EQ(resumed.counters.respawns, 1u);
}

}  // namespace
}  // namespace dpack
