// The socket edge's reject-don't-trust contract, mirrored from shm_ring_test.cc onto a
// byte stream: truncation, bit-flips, hostile lengths, worker-protocol messages, malformed
// task payloads, and time regressions are all rejected with the peer dropped — and after
// every rejection the daemon keeps serving well-behaved clients. Plus the cross-process
// properties: a client SIGKILLed mid-frame leaves no trace but a discarded partial buffer,
// and a remotely driven workload's grant trace is byte-identical to the in-process engine
// across fleet shapes and worker-kill policies.

#include "src/service/net_transport.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/frame.h"
#include "src/common/sleep.h"
#include "src/common/subprocess.h"
#include "src/core/scheduler.h"
#include "src/service/client.h"
#include "src/service/grant_service.h"
#include "src/sim/sim_driver.h"
#include "src/workload/curve_pool.h"
#include "src/workload/scenario.h"

namespace dpack {
namespace {

constexpr uint64_t kSeed = 77;

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

// An in-process daemon front on an ephemeral loopback port, driven by PollOnce() directly
// so the adversarial tests control every event-loop step. The worker fleet forks lazily on
// the first scheduling cycle, so protocol-only tests never pay for a fork.
struct Harness {
  explicit Harness(NetFrontConfig front_config = {}, GrantServiceConfig service_config = {},
                   size_t num_blocks = 4)
      : blocks(Grid(), /*eps_g=*/10.0, /*delta_g=*/1e-7),
        service(GreedyMetric::kDpack, &blocks, ServiceConfigured(service_config)),
        front(&service, &blocks, Grid(), std::make_unique<NetListener>(TcpEphemeral()),
              front_config, [](double) {}) {
    for (size_t b = 0; b < num_blocks; ++b) {
      blocks.AddBlock(/*arrival_time=*/0.0, /*unlocked=*/true);
    }
  }

  static NetAddress TcpEphemeral() {
    NetAddress address;
    address.is_unix = false;
    address.port = 0;
    return address;
  }

  static GrantServiceConfig ServiceConfigured(GrantServiceConfig config) {
    config.service.num_workers = 2;
    return config;
  }

  BlockManager blocks;
  GrantService service;
  NetServiceFront front;
};

// Blocking loopback connect to the harness's resolved ephemeral port.
int ConnectTo(const Harness& harness) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(harness.front.listener().address().port);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  return fd;
}

void SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << std::strerror(errno);
    sent += static_cast<size_t>(n);
  }
}

std::string Framed(const ServiceMessage& message) {
  std::string frame;
  AppendFrame(&frame, EncodeMessage(message));
  return frame;
}

// Pumps the front's event loop until `done` holds (or the iteration budget runs out —
// a deterministic deadline, no clocks).
bool PumpUntil(NetServiceFront& front, const std::function<bool()>& done, int iters = 20000) {
  for (int i = 0; i < iters; ++i) {
    front.PollOnce();
    if (done()) {
      return true;
    }
    SleepFullMicros(100);
  }
  return done();
}

// Reads one reply frame off `fd` while keeping the front's event loop moving (both ends
// live on the test thread, so the read must not block).
bool ReadReplyWhilePumping(NetServiceFront& front, int fd, std::string* payload,
                           int iters = 20000) {
  std::string buffer;
  for (int i = 0; i < iters; ++i) {
    front.PollOnce();
    char buf[4096];
    ssize_t n = recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      buffer.append(buf, static_cast<size_t>(n));
    }
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    FrameDecodeStatus status = DecodeFrame(buffer, 1 << 20, &body, &consumed, &error);
    if (status == FrameDecodeStatus::kOk) {
      payload->assign(body);
      return true;
    }
    if (status == FrameDecodeStatus::kCorrupt) {
      ADD_FAILURE() << "corrupt reply from the daemon: " << error;
      return false;
    }
    SleepFullMicros(100);
  }
  return false;
}

SubmitMsg::Entry ValidEntry(int64_t id) {
  SubmitMsg::Entry entry;
  entry.id = id;
  entry.weight = 1.0;
  entry.arrival_time = 0.0;
  entry.timeout = std::numeric_limits<double>::infinity();
  entry.demand.assign(Grid()->size(), 0.125);
  return entry;
}

SubmitMsg OneTaskSubmit(uint64_t seq, int64_t id) {
  SubmitMsg msg;
  msg.seq = seq;
  msg.now = 0.0;
  msg.entries.push_back(ValidEntry(id));
  return msg;
}

// Proves the daemon still serves after whatever abuse the test inflicted: a fresh client
// submits one task and gets the matching admission reply.
void ExpectStillServing(Harness& harness, uint64_t seq, int64_t task_id) {
  size_t pending_before = harness.service.pending_count();
  int fd = ConnectTo(harness);
  SendAll(fd, Framed(OneTaskSubmit(seq, task_id)));
  std::string payload;
  ASSERT_TRUE(ReadReplyWhilePumping(harness.front, fd, &payload));
  ServiceMessage reply;
  std::string error;
  ASSERT_TRUE(DecodeMessage(payload, &reply, &error)) << error;
  const auto* submit_reply = std::get_if<SubmitReplyMsg>(&reply);
  ASSERT_NE(submit_reply, nullptr);
  EXPECT_EQ(submit_reply->seq, seq);
  EXPECT_EQ(submit_reply->accepted, 1u);
  EXPECT_EQ(submit_reply->rejected, 0u);
  EXPECT_EQ(harness.service.pending_count(), pending_before + 1);
  close(fd);
}

TEST(ParseNetAddressTest, AcceptsUnixAndTcp) {
  NetAddress address;
  std::string error;
  ASSERT_TRUE(ParseNetAddress("unix:/tmp/x.sock", &address, &error));
  EXPECT_TRUE(address.is_unix);
  EXPECT_EQ(address.path, "/tmp/x.sock");
  ASSERT_TRUE(ParseNetAddress("tcp:7001", &address, &error));
  EXPECT_FALSE(address.is_unix);
  EXPECT_EQ(address.port, 7001);
  ASSERT_TRUE(ParseNetAddress("tcp:0", &address, &error));
  EXPECT_EQ(address.port, 0);
}

TEST(ParseNetAddressTest, RejectsMalformedAddresses) {
  NetAddress address;
  std::string error;
  EXPECT_FALSE(ParseNetAddress("", &address, &error));
  EXPECT_FALSE(ParseNetAddress("loopback:1", &address, &error));
  EXPECT_FALSE(ParseNetAddress("unix:", &address, &error));
  EXPECT_FALSE(ParseNetAddress("tcp:", &address, &error));
  EXPECT_FALSE(ParseNetAddress("tcp:65536", &address, &error));
  EXPECT_FALSE(ParseNetAddress("tcp:7a", &address, &error));
  EXPECT_FALSE(ParseNetAddress(std::string("unix:") + std::string(200, 'p'), &address,
                               &error));
}

TEST(NetFrontTest, ValidSubmitRoundTrips) {
  Harness harness;
  ExpectStillServing(harness, /*seq=*/7, /*task_id=*/1);
  EXPECT_EQ(harness.front.counters().submits_accepted, 1u);
  EXPECT_EQ(harness.front.counters().protocol_rejects, 0u);
}

TEST(NetFrontTest, AdmissionBoundMapsToRejectedCount) {
  GrantServiceConfig service_config;
  service_config.admission_queue_capacity = 2;
  Harness harness(NetFrontConfig{}, service_config);
  SubmitMsg msg;
  msg.seq = 9;
  msg.now = 0.0;
  for (int64_t id = 0; id < 5; ++id) {
    msg.entries.push_back(ValidEntry(id));
  }
  int fd = ConnectTo(harness);
  SendAll(fd, Framed(msg));
  std::string payload;
  ASSERT_TRUE(ReadReplyWhilePumping(harness.front, fd, &payload));
  ServiceMessage reply;
  std::string error;
  ASSERT_TRUE(DecodeMessage(payload, &reply, &error)) << error;
  const auto* submit_reply = std::get_if<SubmitReplyMsg>(&reply);
  ASSERT_NE(submit_reply, nullptr);
  // The same bounded-queue admission control as in-process Submit: 2 through, 3 refused.
  EXPECT_EQ(submit_reply->accepted, 2u);
  EXPECT_EQ(submit_reply->rejected, 3u);
  EXPECT_EQ(harness.service.counters().admission_rejects, 3u);
  EXPECT_EQ(harness.front.counters().submits_rejected, 3u);
  close(fd);
}

TEST(NetFrontTest, TruncatedFrameThenEofIsDiscardedNotInterpreted) {
  Harness harness;
  std::string frame = Framed(ServiceMessage(OneTaskSubmit(1, 5)));
  int fd = ConnectTo(harness);
  SendAll(fd, std::string_view(frame).substr(0, frame.size() / 2));
  close(fd);  // EOF with a partial frame buffered — the orderly-shutdown crash shape.
  ASSERT_TRUE(PumpUntil(harness.front,
                        [&] { return harness.front.counters().disconnects == 1; }));
  // The half frame never became a message: nothing submitted, nothing counted received.
  EXPECT_EQ(harness.front.counters().frames_received, 0u);
  EXPECT_EQ(harness.service.pending_count(), 0u);
  ExpectStillServing(harness, /*seq=*/2, /*task_id=*/6);
}

TEST(NetFrontTest, PayloadBitFlipPoisonsTheConnection) {
  Harness harness;
  std::string frame = Framed(ServiceMessage(OneTaskSubmit(1, 5)));
  frame[kFrameHeaderBytes + 3] ^= 0x10;  // One payload bit: the checksum must catch it.
  int fd = ConnectTo(harness);
  SendAll(fd, frame);
  ASSERT_TRUE(PumpUntil(harness.front,
                        [&] { return harness.front.counters().disconnects == 1; }));
  EXPECT_EQ(harness.front.counters().protocol_rejects, 1u);
  EXPECT_EQ(harness.front.counters().frames_received, 0u);
  EXPECT_EQ(harness.service.pending_count(), 0u);
  close(fd);
  ExpectStillServing(harness, /*seq=*/2, /*task_id=*/6);
}

TEST(NetFrontTest, ChecksumBitFlipPoisonsTheConnection) {
  Harness harness;
  std::string frame = Framed(ServiceMessage(OneTaskSubmit(1, 5)));
  frame[8] ^= 0x01;  // A bit of the stored checksum itself.
  int fd = ConnectTo(harness);
  SendAll(fd, frame);
  ASSERT_TRUE(PumpUntil(harness.front,
                        [&] { return harness.front.counters().disconnects == 1; }));
  EXPECT_EQ(harness.front.counters().protocol_rejects, 1u);
  close(fd);
  ExpectStillServing(harness, /*seq=*/2, /*task_id=*/6);
}

TEST(NetFrontTest, OversizedLengthRejectedTheInstantTheHeaderArrives) {
  NetFrontConfig front_config;
  front_config.max_frame_bytes = 1024;
  Harness harness(front_config);
  // A header declaring a payload beyond the bound, with no payload behind it: the front
  // must reject on the header alone, never waiting for (or buffering toward) the claimed
  // gigabytes.
  char header[kFrameHeaderBytes];
  StoreU64Le(header, uint64_t{1} << 40);
  StoreU64Le(header + 8, 0);
  int fd = ConnectTo(harness);
  SendAll(fd, std::string_view(header, sizeof(header)));
  ASSERT_TRUE(PumpUntil(harness.front,
                        [&] { return harness.front.counters().disconnects == 1; }));
  EXPECT_EQ(harness.front.counters().protocol_rejects, 1u);
  close(fd);
  ExpectStillServing(harness, /*seq=*/2, /*task_id=*/6);
}

TEST(NetFrontTest, WorkerProtocolMessageFromClientIsDropped) {
  Harness harness;
  int fd = ConnectTo(harness);
  SendAll(fd, Framed(ServiceMessage(HelloMsg{})));  // A worker message on the tenant edge.
  ASSERT_TRUE(PumpUntil(harness.front,
                        [&] { return harness.front.counters().disconnects == 1; }));
  EXPECT_EQ(harness.front.counters().protocol_rejects, 1u);
  close(fd);
  ExpectStillServing(harness, /*seq=*/2, /*task_id=*/6);
}

TEST(NetFrontTest, UndecodablePayloadIsDropped) {
  Harness harness;
  std::string frame;
  AppendFrame(&frame, "not a service message");  // Valid frame, garbage message.
  int fd = ConnectTo(harness);
  SendAll(fd, frame);
  ASSERT_TRUE(PumpUntil(harness.front,
                        [&] { return harness.front.counters().disconnects == 1; }));
  EXPECT_EQ(harness.front.counters().protocol_rejects, 1u);
  // The frame itself was whole — it counts as received before decode rejects it.
  EXPECT_EQ(harness.front.counters().frames_received, 1u);
  close(fd);
  ExpectStillServing(harness, /*seq=*/2, /*task_id=*/6);
}

TEST(NetFrontTest, MalformedEntryDropsPeerBeforeAnySubmission) {
  Harness harness;
  SubmitMsg msg;
  msg.seq = 1;
  msg.now = 0.0;
  msg.entries.push_back(ValidEntry(1));
  msg.entries.push_back(ValidEntry(2));
  msg.entries[1].demand.resize(1);  // Wrong curve width: would crash the scheduler.
  int fd = ConnectTo(harness);
  SendAll(fd, Framed(ServiceMessage(msg)));
  ASSERT_TRUE(PumpUntil(harness.front,
                        [&] { return harness.front.counters().disconnects == 1; }));
  EXPECT_EQ(harness.front.counters().protocol_rejects, 1u);
  // Validation is all-or-nothing: the valid first entry must NOT have been submitted.
  EXPECT_EQ(harness.service.pending_count(), 0u);
  EXPECT_EQ(harness.front.counters().submits_accepted, 0u);
  close(fd);
  ExpectStillServing(harness, /*seq=*/2, /*task_id=*/6);
}

TEST(NetFrontTest, HostileEntryValuesAreRejected) {
  Harness harness;
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<SubmitMsg::Entry> hostile;
  hostile.push_back(ValidEntry(1));
  hostile.back().demand[0] = nan;
  hostile.push_back(ValidEntry(2));
  hostile.back().demand[0] = -0.5;
  hostile.push_back(ValidEntry(3));
  hostile.back().weight = 0.0;
  hostile.push_back(ValidEntry(4));
  hostile.back().arrival_time = -1.0;
  hostile.push_back(ValidEntry(5));
  hostile.back().timeout = nan;
  hostile.push_back(ValidEntry(6));
  hostile.back().timeout = -2.0;
  hostile.push_back(ValidEntry(7));
  hostile.back().blocks = {99};  // Beyond the block population.
  hostile.push_back(ValidEntry(8));
  hostile.back().blocks = {1, 1};  // Duplicate: would double-charge block 1.
  hostile.push_back(ValidEntry(9));
  hostile.back().blocks = {2, 1};  // Out of order.
  hostile.push_back(ValidEntry(10));
  hostile.back().weight = inf;
  for (size_t i = 0; i < hostile.size(); ++i) {
    SubmitMsg msg;
    msg.seq = 1;
    msg.now = 0.0;
    msg.entries.push_back(hostile[i]);
    uint64_t disconnects_before = harness.front.counters().disconnects;
    int fd = ConnectTo(harness);
    SendAll(fd, Framed(ServiceMessage(msg)));
    ASSERT_TRUE(PumpUntil(harness.front, [&] {
      return harness.front.counters().disconnects == disconnects_before + 1;
    })) << "hostile entry " << i;
    EXPECT_EQ(harness.service.pending_count(), 0u) << "hostile entry " << i;
    close(fd);
  }
  EXPECT_EQ(harness.front.counters().protocol_rejects, hostile.size());
  ExpectStillServing(harness, /*seq=*/2, /*task_id=*/20);
}

TEST(NetFrontTest, TimeRegressionDropsPeer) {
  Harness harness;
  int fd = ConnectTo(harness);
  SubmitMsg first = OneTaskSubmit(1, 1);
  first.now = 5.0;
  SendAll(fd, Framed(ServiceMessage(first)));
  std::string payload;
  ASSERT_TRUE(ReadReplyWhilePumping(harness.front, fd, &payload));
  SubmitMsg regress = OneTaskSubmit(2, 2);
  regress.now = 3.0;  // Virtual time is daemon-global and monotone.
  SendAll(fd, Framed(ServiceMessage(regress)));
  ASSERT_TRUE(PumpUntil(harness.front,
                        [&] { return harness.front.counters().disconnects == 1; }));
  EXPECT_EQ(harness.front.counters().protocol_rejects, 1u);
  EXPECT_EQ(harness.service.pending_count(), 1u);  // Only the first submission landed.
  close(fd);
}

TEST(NetFrontTest, NanInstantDropsPeer) {
  Harness harness;
  SubmitMsg msg = OneTaskSubmit(1, 1);
  msg.now = std::numeric_limits<double>::quiet_NaN();  // NaN defeats < checks; reject.
  int fd = ConnectTo(harness);
  SendAll(fd, Framed(ServiceMessage(msg)));
  ASSERT_TRUE(PumpUntil(harness.front,
                        [&] { return harness.front.counters().disconnects == 1; }));
  EXPECT_EQ(harness.front.counters().protocol_rejects, 1u);
  EXPECT_EQ(harness.service.pending_count(), 0u);
  close(fd);
}

TEST(NetFrontTest, ConnectionCapRefusesTheOverflow) {
  NetFrontConfig front_config;
  front_config.max_connections = 2;
  Harness harness(front_config);
  int a = ConnectTo(harness);
  int b = ConnectTo(harness);
  ASSERT_TRUE(PumpUntil(harness.front,
                        [&] { return harness.front.counters().accepts == 2; }));
  int c = ConnectTo(harness);  // Over the cap: accepted then immediately closed (EOF).
  ASSERT_TRUE(PumpUntil(harness.front,
                        [&] { return harness.front.counters().protocol_rejects == 1; }));
  char buf[1];
  ssize_t n;
  do {
    harness.front.PollOnce();
    n = recv(c, buf, sizeof(buf), MSG_DONTWAIT);
  } while (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK));
  EXPECT_EQ(n, 0);  // Deterministic EOF, not a hang.
  close(a);
  close(b);
  close(c);
}

TEST(NetFrontTest, SlowLorisExhaustsTheProgressBudget) {
  NetFrontConfig front_config;
  front_config.progress_budget = 50;  // Small budget so the test is quick.
  Harness harness(front_config);
  std::string frame = Framed(ServiceMessage(OneTaskSubmit(1, 5)));
  int fd = ConnectTo(harness);
  // Half a frame, then silence: the connection holds a partial frame without progress and
  // must be disconnected once the budget runs out — it can never wedge the daemon.
  SendAll(fd, std::string_view(frame).substr(0, frame.size() / 2));
  ASSERT_TRUE(PumpUntil(harness.front,
                        [&] { return harness.front.counters().budget_disconnects == 1; }));
  EXPECT_EQ(harness.front.counters().disconnects, 1u);
  EXPECT_EQ(harness.service.pending_count(), 0u);
  close(fd);
  ExpectStillServing(harness, /*seq=*/2, /*task_id=*/6);
}

TEST(NetFrontCrossProcessTest, ClientSigkilledMidFrameLeavesTheDaemonServing) {
  Harness harness;
  uint16_t port = harness.front.listener().address().port;
  pid_t child = SpawnChild([port]() -> int {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return 1;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) return 2;
    SubmitMsg msg;
    msg.seq = 1;
    msg.entries.push_back(SubmitMsg::Entry{});
    std::string frame;
    AppendFrame(&frame, EncodeMessage(ServiceMessage(msg)));
    // Half the frame, then die cold — the daemon sees EOF with a partial buffer.
    send(fd, frame.data(), frame.size() / 2, MSG_NOSIGNAL);
    raise(SIGKILL);
    return 3;  // Unreachable.
  });
  ASSERT_TRUE(PumpUntil(harness.front,
                        [&] { return harness.front.counters().disconnects == 1; }));
  ChildStatus status = WaitChild(child);
  EXPECT_EQ(status.state, ChildState::kSignaled);
  EXPECT_EQ(status.term_signal, SIGKILL);
  EXPECT_EQ(harness.front.counters().frames_received, 0u);
  EXPECT_EQ(harness.service.pending_count(), 0u);
  ExpectStillServing(harness, /*seq=*/2, /*task_id=*/6);
}

TEST(NetFrontTest, ServeIdleBudgetBoundsAnOrphanedDaemon) {
  NetFrontConfig front_config;
  front_config.serve_idle_budget = 5;
  front_config.poll_sleep_us = 1;
  Harness harness(front_config);
  EXPECT_FALSE(harness.front.ServeUntilShutdown());  // No client ever arrives.
  EXPECT_FALSE(harness.front.shutdown_received());
}

// --- Remote equivalence: the socket edge must grant byte-identically to in-process runs --

const CurvePool& Pool() {
  static const CurvePool pool(Grid(), BlockCapacityCurve(Grid(), 10.0, 1e-7));
  return pool;
}

ScenarioWorkload Workload(const std::string& name) {
  ScenarioWorkload workload = GenerateScenario(Pool(), ScenarioByName(name, kSeed));
  workload.sim.record_grant_trace = true;
  return workload;
}

SimResult ReferenceRun(const ScenarioWorkload& workload) {
  auto scheduler = std::make_unique<GreedyScheduler>(
      GreedyMetric::kDpack, GreedySchedulerOptions{.eta = 0.05, .incremental = true});
  return RunOnlineSimulation(std::move(scheduler), workload.tasks, workload.sim);
}

// Forks a --listen-style daemon serving the workload's block schedule on `socket_path`.
// Exits 0 on a clean client Shutdown, 3 if the idle budget expired first.
pid_t SpawnDaemon(const std::string& socket_path, const ScenarioWorkload& workload,
                  ServiceConfig service_config) {
  SimConfig sim = workload.sim;
  return SpawnChild([socket_path, sim, service_config]() -> int {
    BlockManager blocks(Grid(), sim.eps_g, sim.delta_g);
    GrantServiceConfig config;
    config.service = service_config;
    config.admission_queue_capacity = sim.admission_queue_capacity;
    config.period = sim.period;
    config.unlock_steps = sim.unlock_steps;
    config.fair_share_n = sim.fair_share_n;
    GrantService service(GreedyMetric::kDpack, &blocks, config);
    std::vector<double> schedule = BlockArrivalSchedule(sim);
    size_t next_block = 0;
    NetAddress address;
    address.is_unix = true;
    address.path = socket_path;
    NetFrontConfig front_config;
    front_config.serve_idle_budget = 400000;  // An orphaned daemon exits, never leaks.
    NetServiceFront front(&service, &blocks, Grid(), std::make_unique<NetListener>(address),
                          front_config, [&blocks, &schedule, &next_block](double now) {
                            while (next_block < schedule.size() &&
                                   schedule[next_block] <= now) {
                              blocks.AddBlock(schedule[next_block]);
                              ++next_block;
                            }
                          });
    return front.ServeUntilShutdown() ? 0 : 3;
  });
}

TEST(NetRemoteEquivalenceTest, RemoteTraceMatchesInProcessAcrossFleetShapesAndKills) {
  ScenarioWorkload workload = Workload("steady_poisson");
  SimResult reference = ReferenceRun(workload);
  ASSERT_FALSE(reference.grant_trace.empty());

  struct Case {
    const char* label;
    size_t workers;
    size_t shards;
    uint64_t kill_round;   // 0 = no worker kill.
    ServiceRecovery recovery;
  };
  const Case cases[] = {
      {"w2s2", 2, 2, 0, ServiceRecovery::kReassign},
      {"w3s6-kill-reassign", 3, 6, 4, ServiceRecovery::kReassign},
      {"w2s2-kill-respawn", 2, 2, 4, ServiceRecovery::kRespawn},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    std::string socket_path =
        testing::TempDir() + "/dpack_net_eq_" + c.label + ".sock";
    ServiceConfig service_config;
    service_config.num_workers = c.workers;
    service_config.num_shards = c.shards;
    service_config.kill_at_round = c.kill_round;
    service_config.kill_worker = 1;
    service_config.recovery = c.recovery;
    pid_t daemon = SpawnDaemon(socket_path, workload, service_config);

    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.Connect("unix:" + socket_path, &error)) << error;
    RemoteRunResult result;
    ASSERT_TRUE(RunRemoteWorkload(client, workload.tasks, workload.sim, &result, &error))
        << error;
    // The whole point: grants over the socket, through the fleet (kill included), are
    // byte-identical to the uninterrupted in-process engine.
    EXPECT_EQ(result.grant_trace, reference.grant_trace);
    EXPECT_EQ(result.submitted, workload.tasks.size());
    EXPECT_EQ(result.rejected, 0u);
    ASSERT_TRUE(client.SendShutdown(&error)) << error;
    client.Close();
    ChildStatus status = WaitChild(daemon);
    EXPECT_EQ(status.state, ChildState::kExited);
    EXPECT_EQ(status.exit_code, 0);
  }
}

}  // namespace
}  // namespace dpack
