// Multi-process service vs in-process engines: the service fleet (daemon + N scheduler
// workers over the shm transport) must grant the exact same task ids in the exact same
// order as the single-process engines, for every fleet shape, every metric, and both the
// sync and async reference engines. Plus the grant-request API's admission control and the
// determinism of the transport counters (two identical runs, identical counters — the
// property the bench baseline gates on).

#include "src/service/grant_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/scheduler.h"
#include "src/sim/service_sim.h"
#include "src/sim/sim_driver.h"
#include "src/workload/curve_pool.h"
#include "src/workload/scenario.h"

namespace dpack {
namespace {

constexpr uint64_t kSeed = 77;

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

const CurvePool& Pool() {
  static const CurvePool pool(Grid(), BlockCapacityCurve(Grid(), 10.0, 1e-7));
  return pool;
}

ScenarioWorkload Workload(const std::string& name) {
  ScenarioWorkload workload = GenerateScenario(Pool(), ScenarioByName(name, kSeed));
  workload.sim.record_grant_trace = true;
  return workload;
}

SimResult ReferenceRun(GreedyMetric metric, const ScenarioWorkload& workload,
                       size_t num_shards = 1, bool async = false) {
  auto scheduler = std::make_unique<GreedyScheduler>(
      metric, GreedySchedulerOptions{.eta = 0.05,
                                     .incremental = true,
                                     .num_shards = num_shards,
                                     .async = async});
  SimConfig config = workload.sim;
  config.num_shards = num_shards;
  config.async = async;
  return RunOnlineSimulation(std::move(scheduler), workload.tasks, config);
}

ServiceSimResult ServiceRun(GreedyMetric metric, const ScenarioWorkload& workload,
                            size_t num_workers, size_t num_shards) {
  ServiceConfig config;
  config.num_workers = num_workers;
  config.num_shards = num_shards;
  return RunServiceSimulation(metric, workload.tasks, workload.sim, config);
}

TEST(ServiceEquivalenceTest, FleetShapesMatchSyncAndAsyncEngines) {
  for (const std::string& name : {std::string("steady_poisson"), std::string("bursty_hotspot")}) {
    ScenarioWorkload workload = Workload(name);
    SimResult sync_reference = ReferenceRun(GreedyMetric::kDpack, workload);
    SimResult async_reference =
        ReferenceRun(GreedyMetric::kDpack, workload, /*num_shards=*/2, /*async=*/true);
    ASSERT_EQ(sync_reference.grant_trace, async_reference.grant_trace) << name;
    struct Shape {
      size_t workers;
      size_t shards;
    };
    for (const Shape& shape : {Shape{2, 2}, Shape{2, 4}, Shape{4, 4}}) {
      std::string label = name + " workers=" + std::to_string(shape.workers) +
                          " shards=" + std::to_string(shape.shards);
      ServiceSimResult service =
          ServiceRun(GreedyMetric::kDpack, workload, shape.workers, shape.shards);
      EXPECT_EQ(service.sim.grant_trace, sync_reference.grant_trace) << label;
      EXPECT_EQ(service.sim.metrics.allocated(), sync_reference.metrics.allocated()) << label;
      EXPECT_EQ(service.sim.pending_at_end, sync_reference.pending_at_end) << label;
      EXPECT_EQ(service.counters.recoveries, 0u) << label;
      EXPECT_GT(service.counters.messages_sent, 0u) << label;
      EXPECT_GT(service.counters.score_rounds, 0u) << label;
    }
  }
}

TEST(ServiceEquivalenceTest, EveryMetricMatches) {
  ScenarioWorkload workload = Workload("diurnal_zipf");
  for (GreedyMetric metric : {GreedyMetric::kDpack, GreedyMetric::kDpf, GreedyMetric::kArea,
                              GreedyMetric::kFcfs}) {
    std::string label = "metric=" + std::to_string(static_cast<int>(metric));
    SimResult reference = ReferenceRun(metric, workload);
    ServiceSimResult service = ServiceRun(metric, workload, /*num_workers=*/2, /*num_shards=*/2);
    EXPECT_EQ(service.sim.grant_trace, reference.grant_trace) << label;
    EXPECT_EQ(service.sim.metrics.allocated(), reference.metrics.allocated()) << label;
  }
}

// The counters are part of the deterministic surface (bench/baseline.json gates them):
// identical inputs must produce identical counter values, run to run.
TEST(ServiceEquivalenceTest, CountersAreDeterministic) {
  ScenarioWorkload workload = Workload("cohort_skew");
  ServiceSimResult first = ServiceRun(GreedyMetric::kDpack, workload, 4, 4);
  ServiceSimResult second = ServiceRun(GreedyMetric::kDpack, workload, 4, 4);
  EXPECT_EQ(first.counters.messages_sent, second.counters.messages_sent);
  EXPECT_EQ(first.counters.messages_received, second.counters.messages_received);
  EXPECT_EQ(first.counters.bytes_sent, second.counters.bytes_sent);
  EXPECT_EQ(first.counters.bytes_received, second.counters.bytes_received);
  EXPECT_EQ(first.counters.score_rounds, second.counters.score_rounds);
  EXPECT_EQ(first.counters.recoveries, second.counters.recoveries);
  EXPECT_EQ(first.counters.respawns, second.counters.respawns);
  EXPECT_EQ(first.counters.state_replays, second.counters.state_replays);
  EXPECT_EQ(first.counters.admission_rejects, second.counters.admission_rejects);
  // ring_stalls is deliberately excluded: it counts producer back-off, which depends on
  // scheduling timing, not on the protocol. Everything above is timing-independent.
}

// --- GrantService: the admission-controlled request API -----------------------------------

Task ProbeTask(int64_t id, double fraction, std::vector<BlockId> blocks) {
  Task task(id, /*weight=*/1.0, Pool().capacity().Scaled(fraction));
  task.blocks = std::move(blocks);
  task.arrival_time = 0.0;
  return task;
}

TEST(GrantServiceTest, BoundedQueueRejectsAndCounts) {
  BlockManager blocks(Grid(), 10.0, 1e-7);
  for (int b = 0; b < 2; ++b) blocks.AddBlock(0.0, /*unlocked=*/true);
  GrantServiceConfig config;
  config.service.num_workers = 2;
  config.admission_queue_capacity = 2;
  GrantService service(GreedyMetric::kDpack, &blocks, config);
  EXPECT_TRUE(service.Submit(ProbeTask(0, 0.2, {0})));
  EXPECT_TRUE(service.Submit(ProbeTask(1, 0.2, {1})));
  EXPECT_FALSE(service.Submit(ProbeTask(2, 0.2, {0})));
  EXPECT_FALSE(service.Submit(ProbeTask(3, 0.2, {1})));
  EXPECT_EQ(service.pending_count(), 2u);
  EXPECT_EQ(service.counters().admission_rejects, 2u);
  // Granting drains the queue; admission opens again.
  EXPECT_EQ(service.RunCycle(0.0), 2u);
  EXPECT_TRUE(service.Submit(ProbeTask(4, 0.2, {0})));
  EXPECT_EQ(service.counters().admission_rejects, 2u);
  EXPECT_EQ(service.metrics().submitted(), 3u);  // Rejected tasks are not submissions.
}

TEST(GrantServiceTest, CyclesMatchInProcessOnlineScheduler) {
  auto build_blocks = []() {
    BlockManager blocks(Grid(), 10.0, 1e-7);
    for (int b = 0; b < 3; ++b) blocks.AddBlock(0.0, /*unlocked=*/true);
    return blocks;
  };
  auto submissions = []() {
    std::vector<Task> tasks;
    tasks.push_back(ProbeTask(0, 0.45, {0, 1, 2}));
    for (int i = 0; i < 3; ++i) {
      tasks.push_back(ProbeTask(1 + i, 0.60, {static_cast<BlockId>(i)}));
    }
    return tasks;
  };

  BlockManager service_blocks = build_blocks();
  GrantServiceConfig config;
  config.service.num_workers = 2;
  GrantService service(GreedyMetric::kDpack, &service_blocks, config);
  for (Task& task : submissions()) ASSERT_TRUE(service.Submit(std::move(task)));
  service.RunCycle(0.0);

  BlockManager reference_blocks = build_blocks();
  auto reference_inner = std::make_unique<GreedyScheduler>(
      GreedyMetric::kDpack, GreedySchedulerOptions{.eta = 0.05, .incremental = true});
  OnlineScheduler reference(std::move(reference_inner), &reference_blocks,
                            OnlineSchedulerConfig{});
  for (Task& task : submissions()) ASSERT_TRUE(reference.Submit(std::move(task)));
  reference.RunCycle(0.0);

  EXPECT_EQ(service.last_granted(), reference.last_granted());
  EXPECT_FALSE(service.last_granted().empty());
}

}  // namespace
}  // namespace dpack
