// Service wire protocol: encode/decode roundtrips for every message type, plus the
// checkpoint codec's corruption discipline applied to the protocol — every truncation
// prefix, header damage, type confusion, and trailing garbage must be rejected with a
// diagnostic, never decoded into a silently-wrong message.

#include "src/service/messages.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

namespace dpack {
namespace {

// One representative instance per message type, with non-default field values so a decode
// that drops or reorders fields cannot roundtrip.
std::vector<ServiceMessage> SampleMessages() {
  std::vector<ServiceMessage> samples;

  BindMsg bind;
  bind.worker_index = 3;
  bind.num_workers = 4;
  bind.num_shards = 7;
  bind.metric = GreedyMetric::kArea;
  bind.eta = 0.0625;
  bind.alpha_orders = {1.5, 2.0, 64.0};
  samples.emplace_back(bind);

  BlockUpsertMsg blocks;
  blocks.entries.push_back({5, {0.25, 0.5, 0.125}, {1.0, 2.0, 4.0}});
  blocks.entries.push_back({6, {}, {}});
  samples.emplace_back(blocks);

  BlockRefreshMsg refresh;
  refresh.entries.push_back({2, {0.75, 0.375}});
  samples.emplace_back(refresh);

  TaskUpsertMsg tasks;
  tasks.entries.push_back({41, 2.5, 11.0, {0.1, 0.2}, {0, 3, 9}});
  tasks.entries.push_back({-1, 1.0, 0.0, {}, {}});
  samples.emplace_back(tasks);

  StateMsg state;
  state.snapshot = std::string("\x00\x01snapshot-blob\xff", 16);
  samples.emplace_back(state);

  ScoreRequestMsg request;
  request.round = 19;
  request.batch_ids = {7, 8, 12};
  request.shards = {0, 3};
  samples.emplace_back(request);

  ScoreReplyMsg reply;
  reply.round = 19;
  reply.entries.push_back({0.875, 4.0, 7});
  reply.entries.push_back({-0.0, 2.0, 12});
  samples.emplace_back(reply);

  HelloMsg hello;
  hello.worker_index = 2;
  samples.emplace_back(hello);

  samples.emplace_back(ShutdownMsg{});

  SubmitMsg submit;
  submit.seq = 11;
  submit.now = 3.5;
  SubmitMsg::Entry submit_entry;
  submit_entry.id = 77;
  submit_entry.weight = 2.0;
  submit_entry.arrival_time = 3.25;
  submit_entry.timeout = std::numeric_limits<double>::infinity();
  submit_entry.num_recent_blocks = 5;
  submit_entry.demand = {0.125, 0.25};
  submit_entry.blocks = {};
  submit.entries.push_back(submit_entry);
  submit.entries.push_back({78, 1.0, 3.5, 10.0, 0, {0.5}, {2, 4}});
  samples.emplace_back(submit);

  SubmitReplyMsg submit_reply;
  submit_reply.seq = 11;
  submit_reply.accepted = 1;
  submit_reply.rejected = 1;
  samples.emplace_back(submit_reply);

  RunCycleMsg run_cycle;
  run_cycle.seq = 12;
  run_cycle.now = 4.0;
  samples.emplace_back(run_cycle);

  CycleReplyMsg cycle_reply;
  cycle_reply.seq = 12;
  cycle_reply.cycle = 4;
  cycle_reply.granted = {77, 41};
  samples.emplace_back(cycle_reply);
  return samples;
}

void ExpectSameMessage(const ServiceMessage& actual, const ServiceMessage& expected,
                       size_t type_index) {
  ASSERT_EQ(actual.index(), expected.index()) << "type " << type_index;
  // Re-encoding is the cheapest deep equality: the codec is deterministic, so equal bytes
  // iff equal messages (and the roundtrip already proved decode(encode(m)) parses).
  EXPECT_EQ(EncodeMessage(actual), EncodeMessage(expected)) << "type " << type_index;
}

TEST(ServiceMessagesTest, EveryTypeRoundTrips) {
  std::vector<ServiceMessage> samples = SampleMessages();
  ASSERT_EQ(samples.size(), std::variant_size_v<ServiceMessage>);
  for (size_t i = 0; i < samples.size(); ++i) {
    std::string bytes = EncodeMessage(samples[i]);
    ServiceMessage decoded;
    std::string error;
    ASSERT_TRUE(DecodeMessage(bytes, &decoded, &error)) << "type " << i << ": " << error;
    ExpectSameMessage(decoded, samples[i], i);
  }
}

TEST(ServiceMessagesTest, EncodingIsDeterministic) {
  for (const ServiceMessage& message : SampleMessages()) {
    EXPECT_EQ(EncodeMessage(message), EncodeMessage(message));
  }
}

// Every strict prefix of every encoded message must fail to decode — never crash, never
// yield a message.
TEST(ServiceMessagesTest, EveryTruncationPrefixRejected) {
  for (const ServiceMessage& message : SampleMessages()) {
    std::string bytes = EncodeMessage(message);
    for (size_t len = 0; len < bytes.size(); ++len) {
      ServiceMessage decoded;
      std::string error;
      EXPECT_FALSE(DecodeMessage(std::string_view(bytes.data(), len), &decoded, &error))
          << "type index " << message.index() << " prefix " << len;
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(ServiceMessagesTest, TrailingBytesRejected) {
  for (const ServiceMessage& message : SampleMessages()) {
    std::string bytes = EncodeMessage(message) + '\0';
    ServiceMessage decoded;
    std::string error;
    EXPECT_FALSE(DecodeMessage(bytes, &decoded, &error)) << message.index();
  }
}

// Header damage: bad magic, unknown version, unknown type byte.
TEST(ServiceMessagesTest, HeaderDamageRejected) {
  std::string bytes = EncodeMessage(ServiceMessage(HelloMsg{1}));
  {
    std::string bad = bytes;
    bad[0] ^= 0x01;  // Magic.
    ServiceMessage decoded;
    std::string error;
    EXPECT_FALSE(DecodeMessage(bad, &decoded, &error));
  }
  {
    std::string bad = bytes;
    bad[4] = static_cast<char>(0x7f);  // Version word (little-endian u32 after the magic).
    ServiceMessage decoded;
    std::string error;
    EXPECT_FALSE(DecodeMessage(bad, &decoded, &error));
  }
  {
    std::string bad = bytes;
    bad[8] = static_cast<char>(0xee);  // Type byte.
    ServiceMessage decoded;
    std::string error;
    EXPECT_FALSE(DecodeMessage(bad, &decoded, &error));
  }
}

// Single-bit flips over the whole encoding must either fail to decode or decode to a
// message that re-encodes differently from the original (i.e. the flip is observable —
// no bit of the payload is silently ignored). Structural fields usually fail; payload
// bits (curve values, scores) decode but to visibly different values.
TEST(ServiceMessagesTest, BitFlipsAreObservable) {
  for (const ServiceMessage& message : SampleMessages()) {
    std::string bytes = EncodeMessage(message);
    for (size_t bit = 0; bit < bytes.size() * 8; bit += 7) {
      std::string bad = bytes;
      bad[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      ServiceMessage decoded;
      std::string error;
      if (DecodeMessage(bad, &decoded, &error)) {
        EXPECT_NE(EncodeMessage(decoded), bytes)
            << "type index " << message.index() << " bit " << bit;
      }
    }
  }
}

// An implausible element count (a length prefix far beyond the buffer) must be rejected as
// corruption, not attempted as an allocation.
TEST(ServiceMessagesTest, ImplausibleCountRejected) {
  ScoreRequestMsg request;
  request.round = 1;
  request.batch_ids = {1, 2, 3};
  std::string bytes = EncodeMessage(ServiceMessage(request));
  // The batch_ids count is the first u64 after [magic u32][version u32][type u8][round u64].
  size_t count_offset = 4 + 4 + 1 + 8;
  ASSERT_LT(count_offset + 8, bytes.size());
  for (int i = 0; i < 8; ++i) bytes[count_offset + i] = static_cast<char>(0xff);
  ServiceMessage decoded;
  std::string error;
  EXPECT_FALSE(DecodeMessage(bytes, &decoded, &error));
  EXPECT_FALSE(error.empty());
}

// The metric enum travels as a byte; out-of-range values must be rejected.
TEST(ServiceMessagesTest, MetricOutOfRangeRejected) {
  BindMsg bind;
  bind.metric = GreedyMetric::kDpf;
  std::string bytes = EncodeMessage(ServiceMessage(bind));
  std::string good = bytes;
  ServiceMessage decoded;
  std::string error;
  ASSERT_TRUE(DecodeMessage(good, &decoded, &error)) << error;
  // Walk every byte: flipping the metric byte to 0x2a must make decode fail wherever it
  // lives. (We locate it by mutation rather than hard-coding the offset.)
  bool rejected_somewhere = false;
  for (size_t i = 9; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(0x2a);
    if (bad == bytes) continue;
    ServiceMessage out;
    std::string err;
    if (!DecodeMessage(bad, &out, &err) && err.find("metric") != std::string::npos) {
      rejected_somewhere = true;
      break;
    }
  }
  EXPECT_TRUE(rejected_somewhere);
}

}  // namespace
}  // namespace dpack
