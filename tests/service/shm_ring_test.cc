// SPSC shared-memory ring: framing, wrap-around, backpressure, and the reject-don't-trust
// corruption contract (truncation / bit-flip / short-read all surface as kCorrupt with the
// cursors untouched — mirroring checkpoint_test.cc's codec suite), plus the cross-process
// crash-safety property: a producer SIGKILLed at an arbitrary instant leaves only complete,
// checksum-valid frames visible to the consumer.

#include "src/common/shm_ring.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/subprocess.h"

namespace dpack {
namespace {

constexpr size_t kRingBytes = 4096;

std::vector<char> RingMemory(size_t bytes = kRingBytes) {
  return std::vector<char>(bytes, 0);
}

TEST(ShmRingTest, MinBytesIsUsable) {
  std::vector<char> mem = RingMemory(ShmRing::MinBytes());
  ShmRing ring(mem.data(), mem.size(), /*initialize=*/true);
  EXPECT_TRUE(ring.TryPush("x"));
  std::string out;
  EXPECT_EQ(ring.TryPop(&out), RingPopStatus::kOk);
  EXPECT_EQ(out, "x");
}

TEST(ShmRingTest, RoundTripPreservesBytesAndOrder) {
  std::vector<char> mem = RingMemory();
  ShmRing ring(mem.data(), mem.size(), /*initialize=*/true);
  std::vector<std::string> messages = {"", "a", std::string("\x00\xff\x7f", 3),
                                       std::string(700, 'q')};
  for (const std::string& m : messages) ASSERT_TRUE(ring.TryPush(m));
  for (const std::string& m : messages) {
    std::string out;
    ASSERT_EQ(ring.TryPop(&out), RingPopStatus::kOk);
    EXPECT_EQ(out, m);
  }
  std::string out;
  EXPECT_EQ(ring.TryPop(&out), RingPopStatus::kEmpty);
}

TEST(ShmRingTest, WrapAroundManyTimes) {
  std::vector<char> mem = RingMemory(ShmRing::MinBytes() + 256);
  ShmRing ring(mem.data(), mem.size(), /*initialize=*/true);
  // Each frame is a large fraction of the capacity, so the buffer offset wraps constantly.
  for (int i = 0; i < 500; ++i) {
    std::string payload(97 + static_cast<size_t>(i % 51), static_cast<char>('a' + i % 26));
    ASSERT_TRUE(ring.TryPush(payload)) << i;
    std::string out;
    ASSERT_EQ(ring.TryPop(&out), RingPopStatus::kOk) << i;
    EXPECT_EQ(out, payload) << i;
  }
}

TEST(ShmRingTest, FullRingRefusesAndIsUnchanged) {
  std::vector<char> mem = RingMemory(ShmRing::MinBytes());
  ShmRing ring(mem.data(), mem.size(), /*initialize=*/true);
  size_t pushed = 0;
  while (ring.TryPush(std::string(16, 'z'))) ++pushed;
  ASSERT_GT(pushed, 0u);
  uint64_t tail_before = ring.tail_cursor();
  EXPECT_FALSE(ring.TryPush(std::string(16, 'z')));
  EXPECT_EQ(ring.tail_cursor(), tail_before);
  // Every queued frame is still intact.
  for (size_t i = 0; i < pushed; ++i) {
    std::string out;
    ASSERT_EQ(ring.TryPop(&out), RingPopStatus::kOk);
    EXPECT_EQ(out, std::string(16, 'z'));
  }
}

TEST(ShmRingTest, LargestFrameFillsRingExactly) {
  std::vector<char> mem = RingMemory();
  ShmRing ring(mem.data(), mem.size(), /*initialize=*/true);
  std::string payload(ring.capacity() - 16, 'x');  // 16 = frame header bytes.
  ASSERT_TRUE(ring.TryPush(payload));
  EXPECT_FALSE(ring.TryPush(""));  // Even an empty frame needs header space now.
  std::string out;
  ASSERT_EQ(ring.TryPop(&out), RingPopStatus::kOk);
  EXPECT_EQ(out, payload);
}

TEST(ShmRingTest, AttachSeesInitializerFrames) {
  std::vector<char> mem = RingMemory();
  ShmRing producer(mem.data(), mem.size(), /*initialize=*/true);
  ASSERT_TRUE(producer.TryPush("across handles"));
  ShmRing consumer(mem.data(), mem.size(), /*initialize=*/false);
  std::string out;
  ASSERT_EQ(consumer.TryPop(&out), RingPopStatus::kOk);
  EXPECT_EQ(out, "across handles");
  // The producer handle observes the consumption through the shared header.
  EXPECT_EQ(producer.used(), 0u);
}

// --- Corruption: mirror of the checkpoint codec's reject-don't-trust suite ----------------

// Flipping any single payload bit must fail the checksum, leave the cursors untouched, and
// poison the ring (subsequent pops keep reporting corruption).
TEST(ShmRingTest, PayloadBitFlipRejectedAndPoisons) {
  const std::string payload = "deterministic grant order";
  for (size_t bit = 0; bit < payload.size() * 8; bit += 17) {
    std::vector<char> mem = RingMemory();
    ShmRing ring(mem.data(), mem.size(), /*initialize=*/true);
    ASSERT_TRUE(ring.TryPush(payload));
    // Frame layout from cursor 0: [len u64][checksum u64][payload].
    ring.raw_buffer()[16 + bit / 8] ^= static_cast<char>(1u << (bit % 8));
    uint64_t head_before = ring.head_cursor();
    std::string out;
    EXPECT_EQ(ring.TryPop(&out), RingPopStatus::kCorrupt) << "bit " << bit;
    EXPECT_EQ(ring.head_cursor(), head_before) << "bit " << bit;
    EXPECT_EQ(ring.TryPop(&out), RingPopStatus::kCorrupt) << "bit " << bit;
  }
}

// A header-length bit-flip that inflates the frame past the published bytes is the
// short-read case: the consumer must refuse rather than read unpublished memory.
TEST(ShmRingTest, LengthBeyondPublishedRejected) {
  std::vector<char> mem = RingMemory();
  ShmRing ring(mem.data(), mem.size(), /*initialize=*/true);
  ASSERT_TRUE(ring.TryPush("abc"));
  uint64_t huge = ring.capacity() * 2;
  std::memcpy(ring.raw_buffer(), &huge, sizeof(huge));
  std::string out;
  EXPECT_EQ(ring.TryPop(&out), RingPopStatus::kCorrupt);
}

// Shrinking the length truncates the frame: the checksum (computed over the full payload)
// can no longer match the shortened slice.
TEST(ShmRingTest, TruncatedLengthRejected) {
  std::vector<char> mem = RingMemory();
  ShmRing ring(mem.data(), mem.size(), /*initialize=*/true);
  ASSERT_TRUE(ring.TryPush("a longer payload, truncated in flight"));
  uint64_t shorter = 5;
  std::memcpy(ring.raw_buffer(), &shorter, sizeof(shorter));
  std::string out;
  EXPECT_EQ(ring.TryPop(&out), RingPopStatus::kCorrupt);
}

TEST(ShmRingTest, ChecksumBitFlipRejected) {
  std::vector<char> mem = RingMemory();
  ShmRing ring(mem.data(), mem.size(), /*initialize=*/true);
  ASSERT_TRUE(ring.TryPush("payload"));
  ring.raw_buffer()[8] ^= 0x40;  // Checksum word starts at frame offset 8.
  std::string out;
  EXPECT_EQ(ring.TryPop(&out), RingPopStatus::kCorrupt);
}

// --- Cross-process: the property the whole service leans on ------------------------------

// A child pushes a deterministic stream; the parent pops concurrently. Every message the
// parent sees must be exact and in order, across a real process boundary.
TEST(ShmRingCrossProcessTest, ChildProducerParentConsumer) {
  constexpr int kMessages = 400;
  ShmRegion region(kRingBytes);
  ShmRing ring(region.data(), region.size(), /*initialize=*/true);
  pid_t child = SpawnChild([&region]() {
    ShmRing producer(region.data(), region.size(), /*initialize=*/false);
    for (int i = 0; i < kMessages; ++i) {
      std::string payload = "msg-" + std::to_string(i) + "-" +
                            std::string(static_cast<size_t>(i % 200), '#');
      while (!producer.TryPush(payload)) {
      }
    }
    return 0;
  });
  for (int i = 0; i < kMessages; ++i) {
    std::string out;
    RingPopStatus status;
    while ((status = ring.TryPop(&out)) == RingPopStatus::kEmpty) {
    }
    ASSERT_EQ(status, RingPopStatus::kOk) << i;
    ASSERT_EQ(out, "msg-" + std::to_string(i) + "-" +
                       std::string(static_cast<size_t>(i % 200), '#'));
  }
  ChildStatus status = WaitChild(child);
  EXPECT_EQ(status.state, ChildState::kExited);
  EXPECT_EQ(status.exit_code, 0);
}

// SIGKILL the producer at an arbitrary instant mid-stream: whatever the consumer drains
// afterwards must be a clean prefix of the stream — complete frames, valid checksums, no
// corruption. This is the "crash leaves only complete frames" guarantee by construction.
TEST(ShmRingCrossProcessTest, ProducerSigkillLeavesOnlyCompleteFrames) {
  for (int round = 0; round < 8; ++round) {
    ShmRegion region(kRingBytes);
    ShmRing ring(region.data(), region.size(), /*initialize=*/true);
    pid_t child = SpawnChild([&region]() -> int {
      ShmRing producer(region.data(), region.size(), /*initialize=*/false);
      for (uint64_t i = 0;; ++i) {
        std::string payload =
            "frame-" + std::to_string(i) + "-" + std::string(100 + i % 700, 'p');
        while (!producer.TryPush(payload)) {
        }
      }
    });
    // Let the child get some frames in flight, then kill it cold. The parent consumes a
    // few frames first so the producer is actively wrapping when the kill lands.
    uint64_t drained = 0;
    std::string out;
    while (drained < 5 + static_cast<uint64_t>(round) * 3) {
      RingPopStatus status = ring.TryPop(&out);
      if (status == RingPopStatus::kOk) {
        ++drained;
        continue;
      }
      ASSERT_EQ(status, RingPopStatus::kEmpty);
    }
    KillChild(child, SIGKILL);
    ChildStatus status = WaitChild(child);
    EXPECT_EQ(status.state, ChildState::kSignaled);
    EXPECT_EQ(status.term_signal, SIGKILL);
    // Drain everything the dead producer published. Every frame must decode exactly.
    while (true) {
      RingPopStatus pop = ring.TryPop(&out);
      if (pop == RingPopStatus::kEmpty) break;
      ASSERT_EQ(pop, RingPopStatus::kOk) << "round " << round << " frame " << drained;
      std::string expected =
          "frame-" + std::to_string(drained) + "-" + std::string(100 + drained % 700, 'p');
      ASSERT_EQ(out, expected) << "round " << round;
      ++drained;
    }
    ASSERT_GT(drained, 0u);
  }
}

TEST(WorkerControlBlockTest, LifeStateAndHeartbeatAcrossFork) {
  ShmRegion region(sizeof(WorkerControlBlock));
  auto* control = new (region.data()) WorkerControlBlock();
  control->heartbeat.store(0, std::memory_order_relaxed);
  control->life_state.store(static_cast<uint32_t>(WorkerLifeState::kStarting),
                            std::memory_order_relaxed);
  pid_t child = SpawnChild([control]() {
    control->life_state.store(static_cast<uint32_t>(WorkerLifeState::kReady),
                              std::memory_order_release);
    for (int i = 0; i < 1000; ++i) {
      control->heartbeat.fetch_add(1, std::memory_order_relaxed);
    }
    control->life_state.store(static_cast<uint32_t>(WorkerLifeState::kExited),
                              std::memory_order_release);
    return 0;
  });
  ChildStatus status = WaitChild(child);
  EXPECT_EQ(status.state, ChildState::kExited);
  EXPECT_EQ(control->heartbeat.load(std::memory_order_relaxed), 1000u);
  EXPECT_EQ(control->life_state.load(std::memory_order_acquire),
            static_cast<uint32_t>(WorkerLifeState::kExited));
}

}  // namespace
}  // namespace dpack
